#include "src/dist/shard.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "src/passes/bugs.h"
#include "src/runtime/parallel_campaign.h"
#include "src/support/error.h"

namespace gauntlet {

namespace {

constexpr const char* kMagic = "gauntletshard";
constexpr int kVersion = 1;

// Hex-token string encoding, the cache_file convention: "-" for empty, two
// hex digits per byte otherwise, so components/details with whitespace or
// arbitrary bytes survive the line-oriented format.
std::string ToHexToken(const std::string& text) {
  if (text.empty()) {
    return "-";
  }
  static const char* kDigits = "0123456789abcdef";
  std::string hex;
  hex.reserve(text.size() * 2);
  for (const unsigned char c : text) {
    hex.push_back(kDigits[c >> 4]);
    hex.push_back(kDigits[c & 0xf]);
  }
  return hex;
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  return -1;
}

std::string FromHexToken(const std::string& token, int line) {
  if (token == "-") {
    return "";
  }
  if (token.size() % 2 != 0) {
    throw CompileError("shard result line " + std::to_string(line) + ": odd hex token");
  }
  std::string text;
  text.reserve(token.size() / 2);
  for (size_t i = 0; i < token.size(); i += 2) {
    const int hi = HexNibble(token[i]);
    const int lo = HexNibble(token[i + 1]);
    if (hi < 0 || lo < 0) {
      throw CompileError("shard result line " + std::to_string(line) + ": bad hex token");
    }
    text.push_back(static_cast<char>((hi << 4) | lo));
  }
  return text;
}

// Strict per-line reader; every extraction failure carries the line number
// (the cache_file idiom — a truncated or hand-edited result file must fail
// the merge, not half-load).
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  void RequireLine(const char* what) {
    for (;;) {
      if (!std::getline(in_, line_)) {
        throw CompileError(std::string("shard result truncated: expected ") + what);
      }
      ++line_number_;
      if (!line_.empty()) {
        tokens_.str(line_);
        tokens_.clear();
        return;
      }
    }
  }

  uint64_t U64(const char* what) {
    uint64_t value = 0;
    if (!(tokens_ >> value)) {
      Fail(what);
    }
    return value;
  }

  int64_t I64(const char* what) {
    int64_t value = 0;
    if (!(tokens_ >> value)) {
      Fail(what);
    }
    return value;
  }

  std::string Token(const char* what) {
    std::string token;
    if (!(tokens_ >> token)) {
      Fail(what);
    }
    return token;
  }

  void ExpectWord(const char* word) {
    if (Token(word) != word) {
      Fail(word);
    }
  }

  int line_number() const { return line_number_; }

 private:
  [[noreturn]] void Fail(const char* what) {
    throw CompileError("shard result line " + std::to_string(line_number_) + ": expected " +
                       what);
  }

  std::istream& in_;
  std::string line_;
  std::istringstream tokens_;
  int line_number_ = 0;
};

}  // namespace

std::vector<ShardRange> PartitionIndexSpace(int total, int shards) {
  if (total < 0) {
    throw CompileError("cannot partition a negative program count");
  }
  if (shards < 1) {
    throw CompileError("shard count must be >= 1");
  }
  std::vector<ShardRange> ranges;
  ranges.reserve(static_cast<size_t>(shards));
  const int base = total / shards;
  const int extra = total % shards;  // the first `extra` shards take one more
  int begin = 0;
  for (int i = 0; i < shards; ++i) {
    const int size = base + (i < extra ? 1 : 0);
    ranges.push_back(ShardRange{i, begin, begin + size});
    begin += size;
  }
  return ranges;
}

void SaveShardResult(const ShardResult& result, std::ostream& out) {
  const CampaignReport& report = result.report;
  out << kMagic << ' ' << kVersion << '\n';
  out << "range " << result.range.index << ' ' << result.range.begin << ' '
      << result.range.end << '\n';
  out << "counters " << report.programs_generated << ' ' << report.programs_with_crash << ' '
      << report.programs_with_semantic << ' ' << report.tests_generated << ' '
      << report.undef_divergences << ' ' << report.structural_mismatches << '\n';
  out << "findings " << report.findings.size() << '\n';
  for (const Finding& finding : report.findings) {
    out << "find " << finding.program_index << ' ' << DetectionMethodToString(finding.method)
        << ' ' << (finding.kind == BugKind::kCrash ? "crash" : "semantic") << ' '
        << ToHexToken(finding.component) << ' '
        << (finding.attributed.has_value() ? BugIdToString(*finding.attributed) : "-") << ' '
        << ToHexToken(finding.detail) << '\n';
  }
  out << "latency " << report.latency.size() << '\n';
  for (const auto& [bug, lat] : report.latency) {
    out << "lat " << BugIdToString(bug) << ' ' << lat.first_program_index << ' '
        << lat.tests_at_detection << ' ' << lat.findings << ' ' << lat.wall_micros << '\n';
  }
  out << "distinct " << report.distinct_bugs.size() << '\n';
  for (const BugId bug : report.distinct_bugs) {
    out << "bug " << BugIdToString(bug) << '\n';
  }
  out << "unattributed " << report.unattributed_components.size() << '\n';
  for (const std::string& component : report.unattributed_components) {
    out << "comp " << ToHexToken(component) << '\n';
  }
  out << "metrics " << result.metrics.metrics().size() << '\n';
  for (const auto& [name, metric] : result.metrics.metrics()) {
    out << "met " << ToHexToken(name) << ' ' << static_cast<int>(metric.scope) << ' '
        << static_cast<int>(metric.kind) << ' ' << metric.value << ' ' << metric.bounds.size();
    for (const uint64_t bound : metric.bounds) {
      out << ' ' << bound;
    }
    out << ' ' << metric.counts.size();
    for (const uint64_t count : metric.counts) {
      out << ' ' << count;
    }
    out << '\n';
  }
  size_t points = 0;
  for (const auto& [domain, entry] : result.coverage.domains()) {
    points += entry.points.size();
  }
  out << "coverage " << points << '\n';
  for (const auto& [domain, entry] : result.coverage.domains()) {
    for (const auto& [point, value] : entry.points) {
      out << "cov " << ToHexToken(domain) << ' ' << static_cast<int>(entry.scope) << ' '
          << ToHexToken(point) << ' ' << value << '\n';
    }
  }
  const CacheStats& stats = result.cache_stats;
  out << "cache " << stats.blast_hits << ' ' << stats.blast_misses << ' '
      << stats.clauses_reused << ' ' << stats.verdict_hits << ' ' << stats.verdict_misses
      << ' ' << stats.queries_skipped << ' ' << stats.pairs_short_circuited << '\n';
}

ShardResult LoadShardResult(std::istream& in) {
  LineReader reader(in);
  reader.RequireLine("header");
  reader.ExpectWord(kMagic);
  const uint64_t version = reader.U64("version");
  if (version != static_cast<uint64_t>(kVersion)) {
    throw CompileError("shard result version " + std::to_string(version) +
                       " is not supported (expected " + std::to_string(kVersion) + ")");
  }

  ShardResult result;
  reader.RequireLine("range");
  reader.ExpectWord("range");
  result.range.index = static_cast<int>(reader.I64("shard index"));
  result.range.begin = static_cast<int>(reader.I64("shard begin"));
  result.range.end = static_cast<int>(reader.I64("shard end"));

  CampaignReport& report = result.report;
  reader.RequireLine("counters");
  reader.ExpectWord("counters");
  report.programs_generated = static_cast<int>(reader.I64("programs generated"));
  report.programs_with_crash = static_cast<int>(reader.I64("programs with crash"));
  report.programs_with_semantic = static_cast<int>(reader.I64("programs with semantic"));
  report.tests_generated = static_cast<int>(reader.I64("tests generated"));
  report.undef_divergences = static_cast<int>(reader.I64("undef divergences"));
  report.structural_mismatches = static_cast<int>(reader.I64("structural mismatches"));

  reader.RequireLine("findings section");
  reader.ExpectWord("findings");
  const uint64_t finding_count = reader.U64("finding count");
  report.findings.reserve(finding_count);
  for (uint64_t i = 0; i < finding_count; ++i) {
    reader.RequireLine("finding");
    reader.ExpectWord("find");
    Finding finding;
    finding.program_index = static_cast<int>(reader.I64("program index"));
    const std::string method = reader.Token("detection method");
    const auto parsed_method = DetectionMethodFromString(method);
    if (!parsed_method.has_value()) {
      throw CompileError("shard result line " + std::to_string(reader.line_number()) +
                         ": unknown detection method '" + method + "'");
    }
    finding.method = *parsed_method;
    const std::string kind = reader.Token("finding kind");
    if (kind != "crash" && kind != "semantic") {
      throw CompileError("shard result line " + std::to_string(reader.line_number()) +
                         ": unknown finding kind '" + kind + "'");
    }
    finding.kind = kind == "crash" ? BugKind::kCrash : BugKind::kSemantic;
    finding.component = FromHexToken(reader.Token("component"), reader.line_number());
    const std::string attributed = reader.Token("attributed fault");
    if (attributed != "-") {
      const auto bug = BugIdFromString(attributed);
      if (!bug.has_value()) {
        throw CompileError("shard result line " + std::to_string(reader.line_number()) +
                           ": unknown fault '" + attributed + "'");
      }
      finding.attributed = *bug;
    }
    finding.detail = FromHexToken(reader.Token("detail"), reader.line_number());
    report.findings.push_back(std::move(finding));
  }

  reader.RequireLine("latency section");
  reader.ExpectWord("latency");
  const uint64_t latency_count = reader.U64("latency count");
  for (uint64_t i = 0; i < latency_count; ++i) {
    reader.RequireLine("latency entry");
    reader.ExpectWord("lat");
    const std::string name = reader.Token("fault name");
    const auto bug = BugIdFromString(name);
    if (!bug.has_value()) {
      throw CompileError("shard result line " + std::to_string(reader.line_number()) +
                         ": unknown fault '" + name + "'");
    }
    DetectionLatency latency;
    latency.first_program_index = static_cast<int>(reader.I64("first program index"));
    latency.tests_at_detection = static_cast<int>(reader.I64("tests at detection"));
    latency.findings = static_cast<int>(reader.I64("finding count"));
    latency.wall_micros = reader.U64("wall micros");
    report.latency.emplace(*bug, latency);
  }

  reader.RequireLine("distinct section");
  reader.ExpectWord("distinct");
  const uint64_t distinct_count = reader.U64("distinct count");
  for (uint64_t i = 0; i < distinct_count; ++i) {
    reader.RequireLine("distinct bug");
    reader.ExpectWord("bug");
    const std::string name = reader.Token("fault name");
    const auto bug = BugIdFromString(name);
    if (!bug.has_value()) {
      throw CompileError("shard result line " + std::to_string(reader.line_number()) +
                         ": unknown fault '" + name + "'");
    }
    report.distinct_bugs.insert(*bug);
  }

  reader.RequireLine("unattributed section");
  reader.ExpectWord("unattributed");
  const uint64_t component_count = reader.U64("component count");
  for (uint64_t i = 0; i < component_count; ++i) {
    reader.RequireLine("unattributed component");
    reader.ExpectWord("comp");
    report.unattributed_components.insert(
        FromHexToken(reader.Token("component"), reader.line_number()));
  }

  reader.RequireLine("metrics section");
  reader.ExpectWord("metrics");
  const uint64_t metric_count = reader.U64("metric count");
  for (uint64_t i = 0; i < metric_count; ++i) {
    reader.RequireLine("metric");
    reader.ExpectWord("met");
    const std::string name = FromHexToken(reader.Token("metric name"), reader.line_number());
    Metric metric;
    const uint64_t scope = reader.U64("metric scope");
    if (scope > static_cast<uint64_t>(MetricScope::kTiming)) {
      throw CompileError("shard result line " + std::to_string(reader.line_number()) +
                         ": unknown metric scope " + std::to_string(scope));
    }
    metric.scope = static_cast<MetricScope>(scope);
    const uint64_t kind = reader.U64("metric kind");
    if (kind > static_cast<uint64_t>(MetricKind::kHistogram)) {
      throw CompileError("shard result line " + std::to_string(reader.line_number()) +
                         ": unknown metric kind " + std::to_string(kind));
    }
    metric.kind = static_cast<MetricKind>(kind);
    metric.value = reader.U64("metric value");
    const uint64_t bound_count = reader.U64("bound count");
    metric.bounds.reserve(bound_count);
    for (uint64_t b = 0; b < bound_count; ++b) {
      metric.bounds.push_back(reader.U64("bound"));
    }
    const uint64_t count_count = reader.U64("bucket count");
    if (metric.kind == MetricKind::kHistogram && count_count != bound_count + 1) {
      throw CompileError("shard result line " + std::to_string(reader.line_number()) +
                         ": histogram bucket/bound size mismatch");
    }
    metric.counts.reserve(count_count);
    for (uint64_t c = 0; c < count_count; ++c) {
      metric.counts.push_back(reader.U64("bucket"));
    }
    result.metrics.Absorb(name, metric);
  }

  reader.RequireLine("coverage section");
  reader.ExpectWord("coverage");
  const uint64_t point_count = reader.U64("coverage point count");
  for (uint64_t i = 0; i < point_count; ++i) {
    reader.RequireLine("coverage point");
    reader.ExpectWord("cov");
    const std::string domain = FromHexToken(reader.Token("domain"), reader.line_number());
    const uint64_t scope = reader.U64("domain scope");
    if (scope > static_cast<uint64_t>(MetricScope::kTiming)) {
      throw CompileError("shard result line " + std::to_string(reader.line_number()) +
                         ": unknown coverage scope " + std::to_string(scope));
    }
    const std::string point = FromHexToken(reader.Token("point"), reader.line_number());
    const uint64_t value = reader.U64("point value");
    result.coverage.Record(domain, point, static_cast<MetricScope>(scope), value);
  }

  reader.RequireLine("cache counters");
  reader.ExpectWord("cache");
  CacheStats& stats = result.cache_stats;
  stats.blast_hits = reader.U64("blast hits");
  stats.blast_misses = reader.U64("blast misses");
  stats.clauses_reused = reader.U64("clauses reused");
  stats.verdict_hits = reader.U64("verdict hits");
  stats.verdict_misses = reader.U64("verdict misses");
  stats.queries_skipped = reader.U64("queries skipped");
  stats.pairs_short_circuited = reader.U64("pairs short-circuited");
  return result;
}

void SaveShardResultFile(const std::string& path, const ShardResult& result) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw CompileError("cannot write shard result '" + path + "'");
  }
  SaveShardResult(result, out);
  out.flush();
  if (!out) {
    throw CompileError("failed writing shard result '" + path + "'");
  }
}

ShardResult LoadShardResultFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw CompileError("cannot open shard result '" + path + "'");
  }
  return LoadShardResult(in);
}

ShardResult RunShardWorker(const ShardWorkerOptions& options, const BugConfig& bugs) {
  if (options.range.begin < 0 || options.range.end < options.range.begin) {
    throw CompileError("invalid shard range [" + std::to_string(options.range.begin) + ", " +
                       std::to_string(options.range.end) + ")");
  }
  ShardResult result;
  result.range = options.range;

  ParallelCampaignOptions campaign = {};
  campaign.campaign = options.campaign;
  campaign.campaign.num_programs = options.range.size();
  campaign.index_begin = options.range.begin;
  campaign.fold_report_metrics = false;
  campaign.jobs = options.jobs;
  campaign.corpus_dir = options.corpus_dir;
  campaign.cache_file = options.cache_file;
  // The worker protocol always carries telemetry: collection is
  // observation-only (reports are bit-identical either way), and the
  // coordinator needs the raw registries to reproduce a single-process
  // --metrics-out/--coverage-out run whatever the topology.
  campaign.campaign.metrics = &result.metrics;
  campaign.campaign.coverage = &result.coverage;
  // Traces stay per-process: a worker may collect its own (--trace-out),
  // but the shard-result protocol never carries one.
  campaign.campaign.trace = options.trace;
  campaign.status_dir = options.status_dir;
  campaign.status_role = options.status_role;
  campaign.snapshot_interval_ms = options.snapshot_interval_ms;

  result.report = ParallelCampaign(campaign).Run(bugs, &result.cache_stats);
  return result;
}

}  // namespace gauntlet
