#include "src/dist/coordinator.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include <atomic>
#include <memory>

#include "src/cache/cache_file.h"
#include "src/obs/health.h"
#include "src/obs/snapshot.h"
#include "src/obs/trace.h"
#include "src/runtime/corpus.h"
#include "src/support/error.h"

namespace gauntlet {

namespace fs = std::filesystem;

namespace {

// Per-shard scratch layout under the coordinator's scratch directory.
std::string ResultPath(const std::string& scratch, int shard) {
  return (fs::path(scratch) / ("shard-" + std::to_string(shard) + ".result")).string();
}
std::string ShardCorpusPath(const std::string& scratch, int shard) {
  return (fs::path(scratch) / ("shard-" + std::to_string(shard) + "-corpus")).string();
}
std::string ShardCachePath(const std::string& scratch, int shard) {
  return (fs::path(scratch) / ("shard-" + std::to_string(shard) + ".cache")).string();
}
// Each fleet worker publishes live status under its own subdirectory of the
// coordinator's status dir — the layout `gauntlet status` scans.
std::string ShardStatusDir(const std::string& status_dir, int shard) {
  return (fs::path(status_dir) / ("shard-" + std::to_string(shard))).string();
}

bool ReadSmallFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

void CopyFileBytes(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  if (!in) {
    throw CompileError("cannot open '" + from + "'");
  }
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw CompileError("cannot write '" + to + "'");
  }
  out << in.rdbuf();
  out.flush();
  if (!out) {
    throw CompileError("failed writing '" + to + "'");
  }
}

// Child argv for one shard: the topology flags the coordinator owns, then
// the campaign flags the caller forwarded verbatim.
std::vector<std::string> WorkerArgv(const ShardCoordinatorOptions& options,
                                    const ShardRange& range, const std::string& scratch) {
  std::vector<std::string> argv = {
      options.worker_binary,
      "shard-worker",
      "--shard-begin",
      std::to_string(range.begin),
      "--shard-end",
      std::to_string(range.end),
      "--seed",
      std::to_string(options.campaign.seed),
      "--jobs",
      std::to_string(options.jobs),
      "--result-out",
      ResultPath(scratch, range.index),
  };
  if (!options.corpus_dir.empty()) {
    argv.push_back("--corpus");
    argv.push_back(ShardCorpusPath(scratch, range.index));
  }
  if (!options.cache_file.empty()) {
    argv.push_back("--cache-file");
    argv.push_back(ShardCachePath(scratch, range.index));
  }
  if (!options.status_dir.empty()) {
    argv.push_back("--status-dir");
    argv.push_back(ShardStatusDir(options.status_dir, range.index));
    argv.push_back("--status-role");
    argv.push_back("shard-" + std::to_string(range.index));
    argv.push_back("--snapshot-interval");
    argv.push_back(std::to_string(options.snapshot_interval_ms));
  }
  argv.insert(argv.end(), options.worker_flags.begin(), options.worker_flags.end());
  return argv;
}

// Spawns every shard as a child process, then reaps them all: shards run
// concurrently (each owns its scratch files), and any failure reports the
// first broken shard by index.
void RunWorkerProcesses(const ShardCoordinatorOptions& options,
                        const std::vector<ShardRange>& ranges, const std::string& scratch) {
  std::vector<pid_t> children;
  children.reserve(ranges.size());
  for (const ShardRange& range : ranges) {
    const std::vector<std::string> argv = WorkerArgv(options, range, scratch);
    std::vector<char*> raw;
    raw.reserve(argv.size() + 1);
    for (const std::string& arg : argv) {
      raw.push_back(const_cast<char*>(arg.c_str()));
    }
    raw.push_back(nullptr);
    const pid_t pid = fork();
    if (pid < 0) {
      throw CompileError("cannot fork shard worker " + std::to_string(range.index));
    }
    if (pid == 0) {
      execv(raw[0], raw.data());
      _exit(127);  // exec failed; 127 is the shell's "command not found"
    }
    children.push_back(pid);
  }
  std::string failure;
  for (size_t i = 0; i < children.size(); ++i) {
    int status = 0;
    if (waitpid(children[i], &status, 0) < 0) {
      if (failure.empty()) {
        failure = "cannot wait for shard worker " + std::to_string(ranges[i].index);
      }
      continue;
    }
    const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!ok && failure.empty()) {
      std::ostringstream message;
      message << "shard worker " << ranges[i].index << " (programs [" << ranges[i].begin
              << ", " << ranges[i].end << ")) ";
      if (WIFEXITED(status)) {
        message << "exited " << WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        message << "killed by signal " << WTERMSIG(status);
      } else {
        message << "failed";
      }
      failure = message.str();
    }
  }
  if (!failure.empty()) {
    throw CompileError(failure);
  }
}

std::string FormatX100(uint64_t x100) {
  std::ostringstream out;
  out << (x100 / 100) << '.';
  const uint64_t cents = x100 % 100;
  out << static_cast<char>('0' + cents / 10) << static_cast<char>('0' + cents % 10);
  return out.str();
}

}  // namespace

std::string BudgetSuggestion::ToString() const {
  std::ostringstream out;
  out << "budget: observed " << FormatX100(tests_per_program_x100)
      << " tests/program (shard means " << FormatX100(min_shard_tests_x100) << ".."
      << FormatX100(max_shard_tests_x100) << "), " << FormatX100(findings_per_program_x100)
      << " findings/program\n";
  if (suggested_max_tests > current_max_tests) {
    out << "budget: suggest raising testgen max_tests " << current_max_tests << " -> "
        << suggested_max_tests << " (richest shard averages "
        << FormatX100(max_shard_tests_x100) << " of " << current_max_tests
        << "; paths are likely truncated)\n";
  } else if (suggested_max_tests < current_max_tests) {
    out << "budget: suggest lowering testgen max_tests " << current_max_tests << " -> "
        << suggested_max_tests << " (mean yield uses under a quarter of the budget)\n";
  } else {
    out << "budget: testgen max_tests " << current_max_tests << " fits the observed yield\n";
  }
  return out.str();
}

BudgetSuggestion SuggestBudgets(const TestGenOptions& testgen,
                                const std::vector<ShardResult>& shards) {
  BudgetSuggestion suggestion;
  suggestion.current_max_tests = testgen.max_tests;
  suggestion.suggested_max_tests = testgen.max_tests;
  uint64_t total_programs = 0;
  uint64_t total_tests = 0;
  uint64_t total_findings = 0;
  bool first = true;
  for (const ShardResult& shard : shards) {
    const uint64_t programs = static_cast<uint64_t>(shard.report.programs_generated);
    if (programs == 0) {
      continue;  // an empty shard has no yield to learn from
    }
    const uint64_t tests = static_cast<uint64_t>(shard.report.tests_generated);
    total_programs += programs;
    total_tests += tests;
    total_findings += shard.report.findings.size();
    const uint64_t mean_x100 = tests * 100 / programs;
    if (first || mean_x100 < suggestion.min_shard_tests_x100) {
      suggestion.min_shard_tests_x100 = mean_x100;
    }
    if (first || mean_x100 > suggestion.max_shard_tests_x100) {
      suggestion.max_shard_tests_x100 = mean_x100;
    }
    first = false;
  }
  if (total_programs == 0) {
    return suggestion;
  }
  suggestion.tests_per_program_x100 = total_tests * 100 / total_programs;
  suggestion.findings_per_program_x100 = total_findings * 100 / total_programs;
  const uint64_t budget_x100 = static_cast<uint64_t>(testgen.max_tests) * 100;
  if (budget_x100 == 0) {
    return suggestion;
  }
  if (suggestion.max_shard_tests_x100 * 8 >= budget_x100 * 7) {
    // The richest shard sits against the cap: enumeration is truncating
    // paths, so the budget — not the programs — bounds coverage.
    suggestion.suggested_max_tests = testgen.max_tests * 2;
  } else if (suggestion.tests_per_program_x100 * 4 < budget_x100 && testgen.max_tests > 8) {
    suggestion.suggested_max_tests = testgen.max_tests / 2 < 8 ? 8 : testgen.max_tests / 2;
  }
  return suggestion;
}

CoordinatorOutcome RunShardCoordinator(const ShardCoordinatorOptions& options,
                                       const BugConfig& bugs) {
  if (options.campaign.trace != nullptr) {
    throw CompileError("traces are per-process; a sharded campaign cannot collect one");
  }
  const uint64_t run_start_micros = TraceNowMicros();
  const std::vector<ShardRange> ranges =
      PartitionIndexSpace(options.campaign.num_programs, options.shards);

  // Scratch directory for the worker protocol's on-disk artifacts. A
  // caller-provided directory is kept for inspection; a private one is
  // removed after a successful merge.
  std::string scratch = options.scratch_dir;
  const bool private_scratch = scratch.empty();
  if (private_scratch) {
    scratch = (fs::temp_directory_path() /
               ("gauntlet-shards-" + std::to_string(static_cast<long>(getpid()))))
                  .string();
  }
  std::error_code ec;
  fs::create_directories(scratch, ec);
  if (ec || !fs::is_directory(scratch)) {
    throw CompileError("cannot create shard scratch directory '" + scratch + "'");
  }

  // Every shard warm-starts from an identical copy of the campaign's cache
  // file (when one exists) — the per-worker rule of the parallel campaign,
  // lifted to processes.
  if (!options.cache_file.empty() && fs::exists(options.cache_file)) {
    for (const ShardRange& range : ranges) {
      CopyFileBytes(options.cache_file, ShardCachePath(scratch, range.index));
    }
  }

  // --- live fleet status (src/obs/snapshot.h + health.h) -------------------
  //
  // The coordinator's own snapshot aggregates the shard heartbeats: totals
  // summed across the fleet, plus a per-shard health digest (stalled/dead
  // shards flagged by heartbeat age + pid liveness). Once the merge
  // finishes, the finalized counters come from the authoritative merged
  // report instead. All of it is observation-only.
  struct CoordinatorLive {
    std::atomic<const char*> phase{"running-shards"};
    std::atomic<bool> finalized{false};
    std::atomic<uint64_t> final_done{0};
    std::atomic<uint64_t> final_tests{0};
    std::atomic<uint64_t> final_findings{0};
    std::atomic<uint64_t> final_distinct{0};
  };
  CoordinatorLive live;
  std::unique_ptr<StatusEmitter> emitter;
  if (!options.status_dir.empty()) {
    for (const ShardRange& range : ranges) {
      fs::create_directories(ShardStatusDir(options.status_dir, range.index), ec);
    }
    const uint64_t started_ms = UnixNowMillis();
    const uint64_t stall_ms =
        options.stall_threshold_ms > 0 ? options.stall_threshold_ms : kDefaultStallThresholdMs;
    emitter = std::make_unique<StatusEmitter>(
        options.status_dir, options.snapshot_interval_ms,
        [&options, &ranges, &live, started_ms, stall_ms]() {
          Snapshot snapshot;
          snapshot.role = "coordinator";
          snapshot.phase = live.phase.load(std::memory_order_relaxed);
          snapshot.pid = static_cast<int64_t>(getpid());
          snapshot.started_unix_ms = started_ms;
          snapshot.updated_unix_ms = UnixNowMillis();
          snapshot.programs_total =
              static_cast<uint64_t>(options.campaign.num_programs > 0
                                        ? options.campaign.num_programs
                                        : 0);
          const uint64_t now = snapshot.updated_unix_ms;
          for (const ShardRange& range : ranges) {
            ShardHealthSummary summary;
            summary.role = "shard-" + std::to_string(range.index);
            summary.programs_total = static_cast<uint64_t>(range.size());
            std::string text;
            Heartbeat heartbeat;
            std::string error;
            const std::string path =
                HeartbeatPathIn(ShardStatusDir(options.status_dir, range.index));
            if (!ReadSmallFile(path, &text)) {
              summary.state = "starting";  // the worker has not published yet
            } else if (!ParseHeartbeatJson(text, &heartbeat, &error)) {
              summary.state = WorkerHealthToString(WorkerHealth::kCorrupt);
            } else {
              const HealthVerdict verdict = EvaluateHeartbeat(
                  heartbeat, now, stall_ms, ProcessAlive(heartbeat.pid));
              summary.state = WorkerHealthToString(verdict.state);
              summary.age_ms = verdict.age_ms;
              summary.programs_done = heartbeat.programs_done;
              summary.findings = heartbeat.findings;
              if (!live.finalized.load(std::memory_order_relaxed)) {
                snapshot.programs_done += heartbeat.programs_done;
                snapshot.tests_generated += heartbeat.tests_generated;
                snapshot.findings += heartbeat.findings;
              }
            }
            snapshot.shards.push_back(std::move(summary));
          }
          if (live.finalized.load(std::memory_order_relaxed)) {
            snapshot.programs_done = live.final_done.load(std::memory_order_relaxed);
            snapshot.tests_generated = live.final_tests.load(std::memory_order_relaxed);
            snapshot.findings = live.final_findings.load(std::memory_order_relaxed);
            snapshot.distinct_bugs = live.final_distinct.load(std::memory_order_relaxed);
          }
          return snapshot;
        });
  }

  if (!options.worker_binary.empty()) {
    RunWorkerProcesses(options, ranges, scratch);
  } else {
    // In-process mode still writes and re-reads every result file, so both
    // modes exercise the full worker serialization protocol.
    uint64_t done_offset = 0;
    uint64_t findings_offset = 0;
    for (const ShardRange& range : ranges) {
      ShardWorkerOptions worker = {};
      worker.campaign = options.campaign;
      worker.campaign.metrics = nullptr;
      worker.campaign.coverage = nullptr;
      worker.campaign.trace = nullptr;
      if (options.campaign.progress) {
        const auto progress = options.campaign.progress;
        const uint64_t done_base = done_offset;
        const uint64_t findings_base = findings_offset;
        worker.campaign.progress = [progress, done_base, findings_base](uint64_t done,
                                                                        uint64_t findings) {
          progress(done_base + done, findings_base + findings);
        };
      }
      worker.range = range;
      worker.jobs = options.jobs;
      if (!options.status_dir.empty()) {
        worker.status_dir = ShardStatusDir(options.status_dir, range.index);
        worker.status_role = "shard-" + std::to_string(range.index);
        worker.snapshot_interval_ms = options.snapshot_interval_ms;
      }
      if (!options.corpus_dir.empty()) {
        worker.corpus_dir = ShardCorpusPath(scratch, range.index);
      }
      if (!options.cache_file.empty()) {
        worker.cache_file = ShardCachePath(scratch, range.index);
      }
      const ShardResult result = RunShardWorker(worker, bugs);
      done_offset += static_cast<uint64_t>(result.report.programs_generated);
      findings_offset += result.report.findings.size();
      SaveShardResultFile(ResultPath(scratch, range.index), result);
    }
  }
  live.phase.store("merging", std::memory_order_relaxed);

  // Merge in shard-index order — which IS global index order under
  // contiguous partitioning, so CampaignReport::Merge reproduces the
  // single-process counters (latency offsets included) exactly.
  CoordinatorOutcome outcome;
  outcome.shard_ranges = ranges;
  std::vector<ShardResult> results;
  results.reserve(ranges.size());
  for (const ShardRange& range : ranges) {
    ShardResult result = LoadShardResultFile(ResultPath(scratch, range.index));
    if (result.range.begin != range.begin || result.range.end != range.end) {
      throw CompileError("shard " + std::to_string(range.index) +
                         " result covers the wrong range");
    }
    results.push_back(std::move(result));
  }
  // Yield accounting reads the pristine per-shard reports, before the merge
  // below moves their findings out.
  outcome.suggestion = SuggestBudgets(options.campaign.testgen, results);
  for (ShardResult& result : results) {
    outcome.report.Merge(std::move(result.report));
    outcome.cache_stats.Merge(result.cache_stats);
  }
  outcome.report.run_start_micros = run_start_micros;

  // The single fold a one-process run performs, now on the cross-shard
  // merged state: raw shard registries/maps first (shard order), then the
  // report's deterministic domains exactly once.
  if (options.campaign.metrics != nullptr) {
    for (const ShardResult& result : results) {
      options.campaign.metrics->MergeFrom(result.metrics);
    }
    outcome.report.RecordMetrics(*options.campaign.metrics);
    if (options.campaign.use_cache) {
      outcome.cache_stats.RecordMetrics(*options.campaign.metrics);
    }
  }
  if (options.campaign.coverage != nullptr) {
    for (const ShardResult& result : results) {
      options.campaign.coverage->MergeFrom(result.coverage);
    }
    outcome.report.RecordCoverage(*options.campaign.coverage, bugs);
  }

  if (!options.corpus_dir.empty()) {
    std::vector<std::string> shard_corpora;
    shard_corpora.reserve(ranges.size());
    for (const ShardRange& range : ranges) {
      const std::string dir = ShardCorpusPath(scratch, range.index);
      if (fs::is_directory(dir)) {
        shard_corpora.push_back(dir);
      }
    }
    MergeCorpusStores(options.corpus_dir, shard_corpora);
  }
  if (!options.cache_file.empty()) {
    std::vector<std::string> shard_caches;
    shard_caches.reserve(ranges.size());
    for (const ShardRange& range : ranges) {
      shard_caches.push_back(ShardCachePath(scratch, range.index));
    }
    MergeValidationCacheFiles(options.cache_file, shard_caches);
  }

  if (private_scratch) {
    fs::remove_all(scratch, ec);  // best-effort; scratch is disposable
  }
  if (emitter != nullptr) {
    // Publish the finished fleet state from the authoritative merged report,
    // then emit the final snapshot and stop. Phase "done" tells supervisors
    // the aging heartbeat is success, not a stall.
    live.final_done.store(static_cast<uint64_t>(outcome.report.programs_generated),
                          std::memory_order_relaxed);
    live.final_tests.store(static_cast<uint64_t>(outcome.report.tests_generated),
                           std::memory_order_relaxed);
    live.final_findings.store(outcome.report.findings.size(), std::memory_order_relaxed);
    live.final_distinct.store(outcome.report.DistinctCount(), std::memory_order_relaxed);
    live.finalized.store(true, std::memory_order_relaxed);
    live.phase.store("done", std::memory_order_relaxed);
    emitter->Stop();
  }
  return outcome;
}

}  // namespace gauntlet
