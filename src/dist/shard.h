#ifndef SRC_DIST_SHARD_H_
#define SRC_DIST_SHARD_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/cache/verdict_cache.h"
#include "src/gauntlet/campaign.h"
#include "src/obs/coverage.h"
#include "src/obs/metrics.h"

namespace gauntlet {

// ---------------------------------------------------------------------------
// One shard of a distributed campaign (ROADMAP "campaign-as-a-service").
//
// A shard is a contiguous slice [begin, end) of the program-index space
// [0, N). Per-program seeds derive from the *global* index
// (ParallelCampaign::ProgramSeed), so a shard reproduces exactly the
// programs — and findings — the single-process run assigns to that range,
// and a coordinator merging shard results in shard-index order reproduces
// the single-process report, metrics and coverage byte-identically.
// ---------------------------------------------------------------------------

struct ShardRange {
  int index = 0;  // shard number in [0, shards)
  int begin = 0;  // first global program index (inclusive)
  int end = 0;    // one past the last global program index

  int size() const { return end - begin; }
};

// Splits [0, total) into `shards` contiguous ranges whose sizes differ by
// at most one, earlier shards taking the extra program. `shards` may exceed
// `total`; the surplus shards come back empty (a worker running zero
// programs is a no-op, not an error).
std::vector<ShardRange> PartitionIndexSpace(int total, int shards);

// Everything one shard worker hands back to the coordinator: the unfolded
// campaign report (global indices throughout), the raw merged per-worker
// telemetry, and the cache counters. "Unfolded" means
// CampaignReport::RecordMetrics/RecordCoverage have NOT been applied — the
// distinct-bug domains they compute do not sum across shards, so the
// coordinator folds exactly once on the cross-shard merged report, the
// same single fold a one-process run performs.
struct ShardResult {
  ShardRange range;
  CampaignReport report;
  MetricsRegistry metrics;
  CoverageMap coverage;
  CacheStats cache_stats;
};

// Versioned line-oriented serialization ("gauntletshard 1", hex-encoded
// strings — the src/cache/cache_file format family). Findings round-trip
// without their repro_test packets: corpus triples are written shard-side,
// so the coordinator needs findings only for the merged report and the
// single fold. Malformed input fails loudly with CompileError.
void SaveShardResult(const ShardResult& result, std::ostream& out);
ShardResult LoadShardResult(std::istream& in);

// File wrappers; both throw CompileError (Load also on a missing file — a
// worker that exited 0 without writing its result is a protocol violation,
// not a cold start).
void SaveShardResultFile(const std::string& path, const ShardResult& result);
ShardResult LoadShardResultFile(const std::string& path);

struct ShardWorkerOptions {
  // Campaign configuration (seed, budgets, targets, cache switch). The
  // num_programs field is ignored: the shard range below is authoritative.
  CampaignOptions campaign;
  ShardRange range;
  int jobs = 1;
  // Shard-private corpus directory; empty = no corpus. The coordinator
  // merges shard corpora with MergeCorpusStores afterwards.
  std::string corpus_dir;
  // Shard-private warm-start cache file (load + rewrite); empty = none.
  std::string cache_file;
  // Live-status directory for this shard (src/obs/snapshot.h); empty = no
  // snapshots/heartbeats. The coordinator points each worker at its own
  // subdirectory of the fleet status dir and aggregates the heartbeats.
  std::string status_dir;
  std::string status_role = "shard";
  int snapshot_interval_ms = 1000;
  // Optional per-process trace collector (`shard-worker --trace-out`).
  // Traces are per-process artifacts: each worker may collect its own, but
  // they never travel through the shard-result protocol or merge across
  // the fleet.
  TraceCollector* trace = nullptr;
};

// Runs one shard in-process: a ParallelCampaign over the range with
// index_begin = range.begin and fold_report_metrics = false, collecting
// metrics and coverage into the result regardless of caller sinks (the
// worker protocol always carries telemetry; the coordinator decides what
// to surface). This is also the body of the `gauntlet shard-worker` verb.
ShardResult RunShardWorker(const ShardWorkerOptions& options, const BugConfig& bugs);

}  // namespace gauntlet

#endif  // SRC_DIST_SHARD_H_
