#ifndef SRC_DIST_COORDINATOR_H_
#define SRC_DIST_COORDINATOR_H_

#include <string>
#include <vector>

#include "src/dist/shard.h"
#include "src/gauntlet/campaign.h"
#include "src/testgen/testgen.h"

namespace gauntlet {

// ---------------------------------------------------------------------------
// The shard coordinator: the fleet driver for a distributed campaign.
//
// Partitions [0, N) into contiguous shards (PartitionIndexSpace), runs each
// shard — in-process, or as a child `gauntlet shard-worker` process — and
// merges the shard results in shard-index order:
//
//   * reports     CampaignReport::Merge, shard order == global index order;
//   * metrics     MetricsRegistry::MergeFrom (sums/maxes commute);
//   * coverage    CoverageMap::MergeFrom (counts sum);
//   * corpora     MergeCorpusStores (manifest union, earliest shard wins);
//   * caches      MergeValidationCacheFiles (fingerprint dedup).
//
// then performs the single report fold (RecordMetrics/RecordCoverage) a
// one-process run would perform. The deterministic sections of the merged
// report, metrics.json, coverage.json and the corpus manifest are therefore
// byte-identical to a single-process run of the same N/seed for ANY shard
// topology x --jobs combination, cache on or off — the CI shard-identity
// gate diffs exactly that.
// ---------------------------------------------------------------------------

struct ShardCoordinatorOptions {
  // The full campaign (N = campaign.num_programs, the global index space).
  // The metrics/coverage sinks receive the merged-and-folded telemetry;
  // campaign.trace must be null (traces are per-process, never sharded).
  CampaignOptions campaign;
  int shards = 1;
  int jobs = 1;  // worker threads per shard
  // Final merged corpus / cache-file destinations; empty = off.
  std::string corpus_dir;
  std::string cache_file;
  // Where per-shard artifacts (result files, shard corpora, shard cache
  // copies) live. Empty = a private directory under the system temp dir,
  // removed after a successful merge; non-empty = kept for inspection.
  std::string scratch_dir;
  // Path to a `gauntlet` binary: shards run as child `shard-worker`
  // processes. Empty = shards run in-process (the results still round-trip
  // through their on-disk files, so both modes exercise the full worker
  // protocol).
  std::string worker_binary;
  // Extra argv entries forwarded verbatim to every child (subprocess mode
  // only): --bug/--targets/--no-cache/--no-budgets and friends. The
  // coordinator owns the topology flags; the caller owns the campaign
  // flags.
  std::vector<std::string> worker_flags;
  // Live fleet telemetry (src/obs/snapshot.h, src/obs/health.h). When
  // non-empty, the coordinator publishes its own snapshot/heartbeat here,
  // points shard i at the `shard-<i>` subdirectory (both child-process and
  // in-process modes), and aggregates the shard heartbeats into a
  // fleet-wide view — flagging stalled/dead shards — in its snapshot.
  // Observation-only: deterministic outputs are byte-identical with this
  // on or off.
  std::string status_dir;
  int snapshot_interval_ms = 1000;
  // A shard whose heartbeat goes quiet for this long (while its process is
  // still alive) is flagged stalled in the fleet view.
  uint64_t stall_threshold_ms = 10000;
};

// The satellite auto-tuner: observed per-shard yield turned into an
// advisory testgen-budget suggestion. Integer fixed-point (x100) so the
// advice itself is deterministic; it is printed to stderr only and never
// enters the report, metrics or coverage — deterministic sections are
// unaffected.
struct BudgetSuggestion {
  uint64_t tests_per_program_x100 = 0;     // overall mean
  uint64_t findings_per_program_x100 = 0;  // overall mean
  uint64_t min_shard_tests_x100 = 0;       // leanest shard's mean
  uint64_t max_shard_tests_x100 = 0;       // richest shard's mean
  size_t current_max_tests = 0;
  size_t suggested_max_tests = 0;

  bool changed() const { return suggested_max_tests != current_max_tests; }
  // The advisory block, one "budget: ..." line per fact.
  std::string ToString() const;
};

// Suggests a max_tests budget from per-shard yield: a shard whose mean
// tests/program reaches 7/8 of the budget is likely truncating paths
// (suggest doubling); an overall mean under a quarter of the budget leaves
// headroom to halve (floor 8). Shards that ran zero programs are ignored.
BudgetSuggestion SuggestBudgets(const TestGenOptions& testgen,
                                const std::vector<ShardResult>& shards);

struct CoordinatorOutcome {
  CampaignReport report;  // merged across shards, folded once
  CacheStats cache_stats;
  BudgetSuggestion suggestion;
  std::vector<ShardRange> shard_ranges;  // the topology that ran
};

// Runs the fleet. Throws CompileError when a worker fails (nonzero exit,
// missing result file, malformed result). The `gauntlet campaign --shards`
// entry point.
CoordinatorOutcome RunShardCoordinator(const ShardCoordinatorOptions& options,
                                       const BugConfig& bugs);

}  // namespace gauntlet

#endif  // SRC_DIST_COORDINATOR_H_
