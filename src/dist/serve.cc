#include "src/dist/serve.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "src/cache/verdict_cache.h"
#include "src/frontend/parser.h"
#include "src/obs/coverage.h"
#include "src/obs/metrics.h"
#include "src/obs/run_report.h"
#include "src/runtime/corpus.h"
#include "src/support/error.h"
#include "src/target/target.h"
#include "src/typecheck/typecheck.h"

namespace gauntlet {

namespace {

// Submissions are single programs; anything past this is garbage framing,
// not a P4 program.
constexpr uint32_t kMaxFramePayload = 16u << 20;

// Loops a read over EINTR and short reads. False on orderly EOF before any
// byte; throws on EOF mid-datum (a truncated frame is a protocol error).
bool ReadExact(int fd, char* data, size_t length, bool eof_ok_at_start) {
  size_t done = 0;
  while (done < length) {
    const ssize_t got = read(fd, data + done, length - done);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw CompileError("serve: socket read failed");
    }
    if (got == 0) {
      if (done == 0 && eof_ok_at_start) {
        return false;
      }
      throw CompileError("serve: truncated frame");
    }
    done += static_cast<size_t>(got);
  }
  return true;
}

void WriteAll(int fd, const char* data, size_t length) {
  size_t done = 0;
  while (done < length) {
    const ssize_t sent = write(fd, data + done, length - done);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw CompileError("serve: socket write failed");
    }
    done += static_cast<size_t>(sent);
  }
}

// One frame: u32 big-endian payload length, then the payload bytes.
bool ReadFrame(int fd, std::string* payload) {
  unsigned char header[4];
  if (!ReadExact(fd, reinterpret_cast<char*>(header), sizeof(header),
                 /*eof_ok_at_start=*/true)) {
    return false;
  }
  const uint32_t length = (static_cast<uint32_t>(header[0]) << 24) |
                          (static_cast<uint32_t>(header[1]) << 16) |
                          (static_cast<uint32_t>(header[2]) << 8) |
                          static_cast<uint32_t>(header[3]);
  if (length > kMaxFramePayload) {
    throw CompileError("serve: frame of " + std::to_string(length) + " bytes exceeds the " +
                       std::to_string(kMaxFramePayload) + "-byte limit");
  }
  payload->assign(length, '\0');
  if (length > 0) {
    ReadExact(fd, payload->data(), length, /*eof_ok_at_start=*/false);
  }
  return true;
}

void WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    throw CompileError("serve: response exceeds the frame limit");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(length >> 24), static_cast<unsigned char>(length >> 16),
      static_cast<unsigned char>(length >> 8), static_cast<unsigned char>(length)};
  WriteAll(fd, reinterpret_cast<const char*>(header), sizeof(header));
  WriteAll(fd, payload.data(), payload.size());
}

std::string ErrorJson(const std::string& message) {
  return "{\"version\":" + std::to_string(kServeProtocolVersion) +
         ",\"status\":\"error\",\"error\":" + JsonQuoted(message) + "}";
}

int ConnectUnixSocket(const std::string& socket_path) {
  sockaddr_un address = {};
  address.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(address.sun_path)) {
    throw CompileError("socket path '" + socket_path + "' is too long");
  }
  std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw CompileError("cannot create a unix socket");
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
    close(fd);
    throw CompileError("cannot connect to '" + socket_path + "'");
  }
  return fd;
}

}  // namespace

GauntletServer::GauntletServer(ServeOptions options, BugConfig bugs)
    : options_(std::move(options)), base_bugs_(std::move(bugs)) {
  if (options_.campaign.trace != nullptr) {
    throw CompileError("serve: traces are per-process batch artifacts; not supported");
  }
}

GauntletServer::~GauntletServer() {
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    unlink(options_.socket_path.c_str());
  }
}

void GauntletServer::Start() {
  if (listen_fd_ >= 0) {
    return;
  }
  sockaddr_un address = {};
  address.sun_family = AF_UNIX;
  if (options_.socket_path.empty()) {
    throw CompileError("serve needs a socket path");
  }
  if (options_.socket_path.size() >= sizeof(address.sun_path)) {
    throw CompileError("socket path '" + options_.socket_path + "' is too long");
  }
  std::memcpy(address.sun_path, options_.socket_path.c_str(), options_.socket_path.size() + 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw CompileError("cannot create a unix socket");
  }
  // Replace a stale socket file (a crashed predecessor); a *live* server on
  // the same path loses its socket, which is the operator's call to make.
  unlink(options_.socket_path.c_str());
  if (bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0 ||
      listen(fd, 8) < 0) {
    close(fd);
    throw CompileError("cannot listen on '" + options_.socket_path + "'");
  }
  listen_fd_ = fd;
}

std::string GauntletServer::HandleSubmission(const std::string& payload) {
  std::istringstream lines(payload);
  std::string line;
  if (!std::getline(lines, line)) {
    return ErrorJson("empty request");
  }
  {
    std::istringstream header(line);
    std::string word;
    int version = 0;
    if (!(header >> word >> version) || word != "gauntlet-submit") {
      return ErrorJson("unknown request '" + line + "'");
    }
    if (version != kServeProtocolVersion) {
      return ErrorJson("unsupported protocol version " + std::to_string(version));
    }
  }

  BugConfig bugs = base_bugs_;
  std::vector<std::string> targets;
  while (std::getline(lines, line) && !line.empty()) {
    std::istringstream header(line);
    std::string key;
    std::string value;
    if (!(header >> key >> value)) {
      return ErrorJson("malformed header '" + line + "'");
    }
    if (key == "bug") {
      const auto bug = BugIdFromString(value);
      if (!bug.has_value()) {
        return ErrorJson("unknown bug '" + value + "'");
      }
      bugs.Enable(*bug);
    } else if (key == "target") {
      if (TargetRegistry::Find(value) == nullptr) {
        return ErrorJson("unknown target '" + value + "'");
      }
      targets.push_back(value);
    } else {
      return ErrorJson("unknown header '" + key + "'");
    }
  }
  std::ostringstream rest;
  rest << lines.rdbuf();
  const std::string program_text = rest.str();
  if (program_text.empty()) {
    return ErrorJson("empty program");
  }

  const int program_index = served_;
  CampaignReport submission;
  // The driver, not TestProgram, accounts for programs — same split as the
  // batch campaign, where each worker slot counts its own program.
  submission.programs_generated = 1;
  try {
    // Reject garbage before the detectors run: a submission that fails the
    // *clean* parser/typechecker is the submitter's bug, not the compiler's
    // (seeded typechecker faults still surface inside TestProgram, which
    // typechecks with the request's BugConfig).
    ProgramPtr program = Parser::ParseString(program_text);
    TypeCheck(*program);

    CampaignOptions per_request = options_.campaign;
    if (!targets.empty()) {
      per_request.targets = targets;
    }
    per_request.metrics = nullptr;   // instrumentation flows via the scoped
    per_request.coverage = nullptr;  // sinks installed below
    per_request.trace = nullptr;
    per_request.progress = nullptr;
    const Campaign campaign(per_request);
    {
      ScopedMetricsSink metrics_sink(options_.campaign.metrics);
      ScopedCoverageSink coverage_sink(options_.campaign.coverage);
      campaign.TestProgram(*program, bugs, program_index, submission,
                           options_.campaign.use_cache ? cache_.get() : nullptr);
    }
    if (corpus_ != nullptr) {
      for (const Finding& finding : submission.findings) {
        if (!corpus_->HasKey(CorpusStore::KeyFor(finding))) {
          corpus_->Add(*program, finding);
        }
      }
    }
  } catch (const CompileError& error) {
    return ErrorJson(error.what());
  }

  std::ostringstream json;
  json << "{\"version\":" << kServeProtocolVersion
       << ",\"status\":\"ok\",\"program_index\":" << program_index
       << ",\"tests_generated\":" << submission.tests_generated << ",\"findings\":[";
  bool first = true;
  for (const Finding& finding : submission.findings) {
    if (!first) {
      json << ',';
    }
    first = false;
    json << "{\"method\":" << JsonQuoted(DetectionMethodToString(finding.method))
         << ",\"kind\":\"" << (finding.kind == BugKind::kCrash ? "crash" : "semantic")
         << "\",\"component\":" << JsonQuoted(finding.component) << ",\"attributed\":";
    if (finding.attributed.has_value()) {
      json << JsonQuoted(BugIdToString(*finding.attributed));
    } else {
      json << "null";
    }
    json << '}';
  }
  json << "]}";

  ++served_;
  report_.Merge(std::move(submission));
  return json.str();
}

int GauntletServer::Run() {
  Start();
  if (cache_ == nullptr && options_.campaign.use_cache) {
    cache_ = std::make_unique<ValidationCache>();
  }
  if (corpus_ == nullptr && !options_.corpus_dir.empty()) {
    corpus_ = std::make_unique<CorpusStore>(options_.corpus_dir);
  }
  while (!shutdown_requested_ &&
         (options_.max_requests == 0 || served_ < options_.max_requests)) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw CompileError("serve: accept failed on '" + options_.socket_path + "'");
    }
    std::string payload;
    std::string response;
    bool framed = false;
    try {
      framed = ReadFrame(fd, &payload);
    } catch (const CompileError&) {
      close(fd);  // bad framing: drop the connection, keep serving
      continue;
    }
    if (!framed) {
      close(fd);
      continue;
    }
    if (payload.rfind("gauntlet-shutdown", 0) == 0) {
      shutdown_requested_ = true;
      response = "{\"version\":" + std::to_string(kServeProtocolVersion) +
                 ",\"status\":\"shutting-down\",\"served\":" + std::to_string(served_) + "}";
    } else {
      response = HandleSubmission(payload);
    }
    try {
      WriteFrame(fd, response);
    } catch (const CompileError&) {
      // The client hung up before the verdict: its loss, not a server fault.
    }
    close(fd);
  }

  // The single fold a batch campaign performs, applied to everything this
  // serving session absorbed — so --metrics-out/--coverage-out from `serve`
  // carry the same campaign/... domains a batch run writes.
  if (!folded_) {
    folded_ = true;
    if (options_.campaign.metrics != nullptr) {
      report_.RecordMetrics(*options_.campaign.metrics);
      if (cache_ != nullptr) {
        cache_->Stats().RecordMetrics(*options_.campaign.metrics);
      }
    }
    if (options_.campaign.coverage != nullptr) {
      report_.RecordCoverage(*options_.campaign.coverage, base_bugs_);
    }
  }
  return served_;
}

std::string BuildSubmitPayload(const std::string& program_text,
                               const std::vector<std::string>& bug_names,
                               const std::vector<std::string>& target_names) {
  std::string payload = "gauntlet-submit " + std::to_string(kServeProtocolVersion) + "\n";
  for (const std::string& bug : bug_names) {
    payload += "bug " + bug + "\n";
  }
  for (const std::string& target : target_names) {
    payload += "target " + target + "\n";
  }
  payload += "\n";
  payload += program_text;
  return payload;
}

std::string BuildShutdownPayload() {
  return "gauntlet-shutdown " + std::to_string(kServeProtocolVersion) + "\n";
}

std::string SendServeRequest(const std::string& socket_path, const std::string& payload) {
  const int fd = ConnectUnixSocket(socket_path);
  std::string response;
  try {
    WriteFrame(fd, payload);
    if (!ReadFrame(fd, &response)) {
      throw CompileError("server closed the connection without a response");
    }
  } catch (...) {
    close(fd);
    throw;
  }
  close(fd);
  return response;
}

}  // namespace gauntlet
