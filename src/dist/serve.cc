#include "src/dist/serve.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "src/cache/verdict_cache.h"
#include "src/frontend/parser.h"
#include "src/obs/health.h"
#include "src/obs/run_report.h"
#include "src/runtime/corpus.h"
#include "src/support/error.h"
#include "src/target/target.h"
#include "src/typecheck/typecheck.h"

namespace gauntlet {

namespace {

// Submissions are single programs; anything past this is garbage framing,
// not a P4 program.
constexpr uint32_t kMaxFramePayload = 16u << 20;

// Loops a read over EINTR and short reads. False on orderly EOF before any
// byte; throws on EOF mid-datum (a truncated frame is a protocol error).
bool ReadExact(int fd, char* data, size_t length, bool eof_ok_at_start) {
  size_t done = 0;
  while (done < length) {
    const ssize_t got = read(fd, data + done, length - done);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw CompileError("serve: socket read failed");
    }
    if (got == 0) {
      if (done == 0 && eof_ok_at_start) {
        return false;
      }
      throw CompileError("serve: truncated frame");
    }
    done += static_cast<size_t>(got);
  }
  return true;
}

void WriteAll(int fd, const char* data, size_t length) {
  size_t done = 0;
  while (done < length) {
    const ssize_t sent = write(fd, data + done, length - done);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw CompileError("serve: socket write failed");
    }
    done += static_cast<size_t>(sent);
  }
}

// One frame: u32 big-endian payload length, then the payload bytes.
bool ReadFrame(int fd, std::string* payload) {
  unsigned char header[4];
  if (!ReadExact(fd, reinterpret_cast<char*>(header), sizeof(header),
                 /*eof_ok_at_start=*/true)) {
    return false;
  }
  const uint32_t length = (static_cast<uint32_t>(header[0]) << 24) |
                          (static_cast<uint32_t>(header[1]) << 16) |
                          (static_cast<uint32_t>(header[2]) << 8) |
                          static_cast<uint32_t>(header[3]);
  if (length > kMaxFramePayload) {
    throw CompileError("serve: frame of " + std::to_string(length) + " bytes exceeds the " +
                       std::to_string(kMaxFramePayload) + "-byte limit");
  }
  payload->assign(length, '\0');
  if (length > 0) {
    ReadExact(fd, payload->data(), length, /*eof_ok_at_start=*/false);
  }
  return true;
}

void WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    throw CompileError("serve: response exceeds the frame limit");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(length >> 24), static_cast<unsigned char>(length >> 16),
      static_cast<unsigned char>(length >> 8), static_cast<unsigned char>(length)};
  WriteAll(fd, reinterpret_cast<const char*>(header), sizeof(header));
  WriteAll(fd, payload.data(), payload.size());
}

std::string ErrorJson(const std::string& message) {
  return "{\"version\":" + std::to_string(kServeProtocolVersion) +
         ",\"status\":\"error\",\"error\":" + JsonQuoted(message) + "}";
}

// Request-latency histogram bounds (micros): 100us .. 3s, then overflow.
const std::vector<uint64_t> kRequestLatencyBounds = {
    100, 300, 1000, 3000, 10000, 30000, 100000, 300000, 1000000, 3000000};

// Graceful-stop flag (satellite: SIGTERM/SIGINT drain the server instead of
// killing it mid-write). sig_atomic_t is the only thing a handler may touch.
volatile std::sig_atomic_t g_serve_stop = 0;

void HandleStopSignal(int) { g_serve_stop = 1; }

// Installs the stop handlers for the lifetime of Run() and restores the
// previous dispositions afterwards. No SA_RESTART: a pending stop must make
// accept() return EINTR so the loop condition re-checks the flag.
class ScopedStopSignals {
 public:
  explicit ScopedStopSignals(bool install) : installed_(install) {
    if (!installed_) {
      return;
    }
    g_serve_stop = 0;
    struct sigaction action = {};
    action.sa_handler = HandleStopSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    sigaction(SIGTERM, &action, &old_term_);
    sigaction(SIGINT, &action, &old_int_);
  }
  ~ScopedStopSignals() {
    if (!installed_) {
      return;
    }
    sigaction(SIGTERM, &old_term_, nullptr);
    sigaction(SIGINT, &old_int_, nullptr);
  }
  ScopedStopSignals(const ScopedStopSignals&) = delete;
  ScopedStopSignals& operator=(const ScopedStopSignals&) = delete;

 private:
  bool installed_;
  struct sigaction old_term_ = {};
  struct sigaction old_int_ = {};
};

int ConnectUnixSocket(const std::string& socket_path) {
  sockaddr_un address = {};
  address.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(address.sun_path)) {
    throw CompileError("socket path '" + socket_path + "' is too long");
  }
  std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw CompileError("cannot create a unix socket");
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0) {
    close(fd);
    throw CompileError("cannot connect to '" + socket_path + "'");
  }
  return fd;
}

}  // namespace

GauntletServer::GauntletServer(ServeOptions options, BugConfig bugs)
    : options_(std::move(options)), base_bugs_(std::move(bugs)) {
  // Out paths (and the status dir, whose snapshots embed a metrics view)
  // need sinks; wire in server-owned ones wherever the caller injected none.
  if (options_.campaign.metrics == nullptr &&
      (!options_.metrics_out.empty() || !options_.status_dir.empty())) {
    options_.campaign.metrics = &own_metrics_;
  }
  if (options_.campaign.coverage == nullptr &&
      (!options_.coverage_out.empty() || !options_.status_dir.empty())) {
    options_.campaign.coverage = &own_coverage_;
  }
  if (options_.campaign.trace == nullptr && !options_.trace_out.empty()) {
    options_.campaign.trace = &own_trace_;
  }
}

GauntletServer::~GauntletServer() {
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    unlink(options_.socket_path.c_str());
  }
}

void GauntletServer::Start() {
  if (listen_fd_ >= 0) {
    return;
  }
  sockaddr_un address = {};
  address.sun_family = AF_UNIX;
  if (options_.socket_path.empty()) {
    throw CompileError("serve needs a socket path");
  }
  if (options_.socket_path.size() >= sizeof(address.sun_path)) {
    throw CompileError("socket path '" + options_.socket_path + "' is too long");
  }
  std::memcpy(address.sun_path, options_.socket_path.c_str(), options_.socket_path.size() + 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw CompileError("cannot create a unix socket");
  }
  // Replace a stale socket file (a crashed predecessor); a *live* server on
  // the same path loses its socket, which is the operator's call to make.
  unlink(options_.socket_path.c_str());
  if (bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0 ||
      listen(fd, 8) < 0) {
    close(fd);
    throw CompileError("cannot listen on '" + options_.socket_path + "'");
  }
  listen_fd_ = fd;
}

std::string GauntletServer::HandleSubmission(const std::string& payload) {
  // Per-request verdict counters (timing scope: traffic is wall-clock by
  // nature). The caller installed the scoped sinks; with none configured
  // every CountMetric is a no-op.
  const auto fail = [](const std::string& message) {
    CountMetric("serve/verdict/error", MetricScope::kTiming);
    return ErrorJson(message);
  };
  std::istringstream lines(payload);
  std::string line;
  if (!std::getline(lines, line)) {
    return fail("empty request");
  }
  {
    std::istringstream header(line);
    std::string word;
    int version = 0;
    if (!(header >> word >> version) || word != "gauntlet-submit") {
      return fail("unknown request '" + line + "'");
    }
    if (version != kServeProtocolVersion) {
      return fail("unsupported protocol version " + std::to_string(version));
    }
  }

  BugConfig bugs = base_bugs_;
  std::vector<std::string> targets;
  while (std::getline(lines, line) && !line.empty()) {
    std::istringstream header(line);
    std::string key;
    std::string value;
    if (!(header >> key >> value)) {
      return fail("malformed header '" + line + "'");
    }
    if (key == "bug") {
      const auto bug = BugIdFromString(value);
      if (!bug.has_value()) {
        return fail("unknown bug '" + value + "'");
      }
      bugs.Enable(*bug);
    } else if (key == "target") {
      if (TargetRegistry::Find(value) == nullptr) {
        return fail("unknown target '" + value + "'");
      }
      targets.push_back(value);
    } else {
      return fail("unknown header '" + key + "'");
    }
  }
  std::ostringstream rest;
  rest << lines.rdbuf();
  const std::string program_text = rest.str();
  if (program_text.empty()) {
    return fail("empty program");
  }

  const int program_index = served_;
  CampaignReport submission;
  // The driver, not TestProgram, accounts for programs — same split as the
  // batch campaign, where each worker slot counts its own program.
  submission.programs_generated = 1;
  try {
    // Reject garbage before the detectors run: a submission that fails the
    // *clean* parser/typechecker is the submitter's bug, not the compiler's
    // (seeded typechecker faults still surface inside TestProgram, which
    // typechecks with the request's BugConfig).
    ProgramPtr program = Parser::ParseString(program_text);
    TypeCheck(*program);

    CampaignOptions per_request = options_.campaign;
    if (!targets.empty()) {
      per_request.targets = targets;
    }
    per_request.metrics = nullptr;   // instrumentation flows via the scoped
    per_request.coverage = nullptr;  // sinks Run() installs per request
    per_request.trace = nullptr;
    per_request.progress = nullptr;
    const Campaign campaign(per_request);
    campaign.TestProgram(*program, bugs, program_index, submission,
                         options_.campaign.use_cache ? cache_.get() : nullptr);
    if (corpus_ != nullptr) {
      for (const Finding& finding : submission.findings) {
        if (!corpus_->HasKey(CorpusStore::KeyFor(finding))) {
          corpus_->Add(*program, finding);
        }
      }
    }
  } catch (const CompileError& error) {
    return fail(error.what());
  }

  CountMetric(submission.findings.empty() ? "serve/verdict/clean" : "serve/verdict/findings",
              MetricScope::kTiming);

  std::ostringstream json;
  json << "{\"version\":" << kServeProtocolVersion
       << ",\"status\":\"ok\",\"program_index\":" << program_index
       << ",\"tests_generated\":" << submission.tests_generated << ",\"findings\":[";
  bool first = true;
  for (const Finding& finding : submission.findings) {
    if (!first) {
      json << ',';
    }
    first = false;
    json << "{\"method\":" << JsonQuoted(DetectionMethodToString(finding.method))
         << ",\"kind\":\"" << (finding.kind == BugKind::kCrash ? "crash" : "semantic")
         << "\",\"component\":" << JsonQuoted(finding.component) << ",\"attributed\":";
    if (finding.attributed.has_value()) {
      json << JsonQuoted(BugIdToString(*finding.attributed));
    } else {
      json << "null";
    }
    json << '}';
  }
  json << "]}";

  ++served_;
  report_.Merge(std::move(submission));
  return json.str();
}

Snapshot GauntletServer::FlushAndSnapshot(bool final_flush) {
  Snapshot snapshot;
  snapshot.role = "serve";
  snapshot.phase = phase_.load(std::memory_order_relaxed);
  snapshot.pid = static_cast<int64_t>(getpid());
  snapshot.started_unix_ms = started_unix_ms_;
  snapshot.updated_unix_ms = UnixNowMillis();

  const bool have_metrics = options_.campaign.metrics != nullptr;
  const bool have_coverage = options_.campaign.coverage != nullptr;
  MetricsRegistry metrics;
  CoverageMap coverage;
  std::string trace_json;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (have_metrics) {
      metrics = *options_.campaign.metrics;
    }
    if (have_coverage) {
      coverage = *options_.campaign.coverage;
    }
    if (!folded_) {
      // Fold the campaign domains on the *copies*: the in-place fold
      // happens exactly once, after the accept loop — flushing mid-session
      // must not double-count into the shared sinks.
      if (have_metrics) {
        report_.RecordMetrics(metrics);
        if (cache_ != nullptr) {
          cache_->Stats().RecordMetrics(metrics);
        }
      }
      if (have_coverage) {
        report_.RecordCoverage(coverage, base_bugs_);
      }
    }
    snapshot.requests_served = static_cast<uint64_t>(served_);
    snapshot.programs_done = static_cast<uint64_t>(served_);
    snapshot.tests_generated = static_cast<uint64_t>(report_.tests_generated);
    snapshot.findings = report_.findings.size();
    snapshot.distinct_bugs = report_.DistinctCount();
    if (!options_.trace_out.empty() && options_.campaign.trace != nullptr) {
      // Span buffers are appended under state_mutex_ (the accept loop holds
      // it across each request), so reading them here is race-free.
      trace_json = TraceJson(options_.campaign.trace->SortedEvents());
    }
  }
  if (have_metrics) {
    RecordProcessSelfStats(metrics);
    snapshot.metrics_json = MetricsJson(metrics);
  }

  const auto write = [final_flush](const std::string& path, const std::string& content) {
    if (path.empty()) {
      return;
    }
    if (!WriteFileAtomic(path, content) && final_flush) {
      throw CompileError("serve: cannot write '" + path + "'");
    }
  };
  if (have_metrics) {
    write(options_.metrics_out, snapshot.metrics_json);
  }
  if (have_coverage) {
    write(options_.coverage_out, CoverageJson(coverage));
  }
  write(options_.trace_out, trace_json);
  return snapshot;
}

int GauntletServer::Run() {
  Start();
  if (cache_ == nullptr && options_.campaign.use_cache) {
    cache_ = std::make_unique<ValidationCache>();
  }
  if (corpus_ == nullptr && !options_.corpus_dir.empty()) {
    corpus_ = std::make_unique<CorpusStore>(options_.corpus_dir);
  }
  if (trace_buffer_ == nullptr && options_.campaign.trace != nullptr) {
    trace_buffer_ = options_.campaign.trace->NewBuffer(0);
  }
  started_unix_ms_ = UnixNowMillis();
  phase_.store("serving", std::memory_order_relaxed);
  if (emitter_ == nullptr && !options_.status_dir.empty()) {
    emitter_ = std::make_unique<StatusEmitter>(
        options_.status_dir, options_.snapshot_interval_ms,
        [this]() { return FlushAndSnapshot(/*final_flush=*/false); });
  }
  ScopedStopSignals stop_signals(options_.install_signal_handlers);

  while (!shutdown_requested_ && g_serve_stop == 0 &&
         (options_.max_requests == 0 || served_ < options_.max_requests)) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;  // re-checks g_serve_stop: a stop signal drains the loop
      }
      throw CompileError("serve: accept failed on '" + options_.socket_path + "'");
    }
    std::string payload;
    std::string response;
    bool framed = false;
    try {
      framed = ReadFrame(fd, &payload);
    } catch (const CompileError&) {
      close(fd);  // bad framing: drop the connection, keep serving
      continue;
    }
    if (!framed) {
      close(fd);
      continue;
    }
    if (payload.rfind("gauntlet-shutdown", 0) == 0) {
      shutdown_requested_ = true;
      response = "{\"version\":" + std::to_string(kServeProtocolVersion) +
                 ",\"status\":\"shutting-down\",\"served\":" + std::to_string(served_) + "}";
    } else {
      // The whole submission runs under the state mutex with the shared
      // sinks installed: the flush thread only ever sees request
      // boundaries. The span (declared after the sinks, so it folds its
      // time before they uninstall) feeds the request-latency histogram.
      std::lock_guard<std::mutex> lock(state_mutex_);
      ScopedMetricsSink metrics_sink(options_.campaign.metrics);
      ScopedCoverageSink coverage_sink(options_.campaign.coverage);
      ScopedTraceSink trace_sink(trace_buffer_);
      uint64_t latency_micros = 0;
      {
        TraceSpan span("request", "serve");
        response = HandleSubmission(payload);
        latency_micros = span.ElapsedMicros();
      }
      CountMetric("serve/requests", MetricScope::kTiming);
      ObserveMetric("serve/request_latency_micros", MetricScope::kTiming, kRequestLatencyBounds,
                    latency_micros);
    }
    try {
      WriteFrame(fd, response);
    } catch (const CompileError&) {
      // The client hung up before the verdict: its loss, not a server fault.
    }
    close(fd);
  }
  if (g_serve_stop != 0) {
    std::fputs("serve: stop signal received; flushing sinks\n", stderr);
  }

  // The single fold a batch campaign performs, applied to everything this
  // serving session absorbed — so --metrics-out/--coverage-out from `serve`
  // carry the same campaign/... domains a batch run writes.
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (!folded_) {
      folded_ = true;
      if (options_.campaign.metrics != nullptr) {
        report_.RecordMetrics(*options_.campaign.metrics);
        if (cache_ != nullptr) {
          cache_->Stats().RecordMetrics(*options_.campaign.metrics);
        }
      }
      if (options_.campaign.coverage != nullptr) {
        report_.RecordCoverage(*options_.campaign.coverage, base_bugs_);
      }
    }
  }
  phase_.store("done", std::memory_order_relaxed);
  if (emitter_ != nullptr) {
    emitter_->Stop();  // final snapshot: phase "done", folded sinks
    emitter_.reset();
  }
  if (!options_.metrics_out.empty() || !options_.coverage_out.empty() ||
      !options_.trace_out.empty()) {
    FlushAndSnapshot(/*final_flush=*/true);
  }
  return served_;
}

std::string BuildSubmitPayload(const std::string& program_text,
                               const std::vector<std::string>& bug_names,
                               const std::vector<std::string>& target_names) {
  std::string payload = "gauntlet-submit " + std::to_string(kServeProtocolVersion) + "\n";
  for (const std::string& bug : bug_names) {
    payload += "bug " + bug + "\n";
  }
  for (const std::string& target : target_names) {
    payload += "target " + target + "\n";
  }
  payload += "\n";
  payload += program_text;
  return payload;
}

std::string BuildShutdownPayload() {
  return "gauntlet-shutdown " + std::to_string(kServeProtocolVersion) + "\n";
}

std::string SendServeRequest(const std::string& socket_path, const std::string& payload) {
  const int fd = ConnectUnixSocket(socket_path);
  std::string response;
  try {
    WriteFrame(fd, payload);
    if (!ReadFrame(fd, &response)) {
      throw CompileError("server closed the connection without a response");
    }
  } catch (...) {
    close(fd);
    throw;
  }
  close(fd);
  return response;
}

}  // namespace gauntlet
