#ifndef SRC_DIST_SERVE_H_
#define SRC_DIST_SERVE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/gauntlet/campaign.h"
#include "src/obs/coverage.h"
#include "src/obs/metrics.h"
#include "src/obs/snapshot.h"
#include "src/obs/trace.h"

namespace gauntlet {

class CorpusStore;

// ---------------------------------------------------------------------------
// `gauntlet serve`: the always-on campaign service (first increment).
//
// A long-lived process accepts P4 programs over a local AF_UNIX stream
// socket, runs the full detection pipeline on each submission —
// validate (§5) + testgen (§6) + execute on the selected targets — and
// streams the verdict back as one JSON object. Every submission folds into
// the server's shared sinks: the corpus store (reproducer triples +
// manifest), the metrics registry, and the coverage map, so an absorbed
// traffic stream accumulates exactly the artifacts a batch campaign writes.
//
// Wire protocol (versioned, length-prefixed):
//
//   frame     := u32 payload length (big-endian) ++ payload bytes
//   request   := "gauntlet-submit 1\n" header* "\n" <program text>
//              | "gauntlet-shutdown 1\n"
//   header    := "bug <catalogue-name>\n" | "target <registry-name>\n"
//   response  := one frame holding one JSON object (single line)
//
// One connection per request: connect, send one frame, read one frame,
// close. `bug` headers seed faults into the compilers for that submission
// (on top of the server's base BugConfig); `target` headers override the
// replay target set. Responses:
//
//   {"version":1,"status":"ok","program_index":N,"tests_generated":T,
//    "findings":[{"method":...,"kind":...,"component":...,"attributed":...}]}
//   {"version":1,"status":"error","error":"..."}
//   {"version":1,"status":"shutting-down","served":N}
//
// A malformed or ill-typed submission is an "error" response (the
// connection still answers); a malformed *frame* drops the connection. The
// server exits its accept loop on a shutdown request.
// ---------------------------------------------------------------------------

inline constexpr int kServeProtocolVersion = 1;

struct ServeOptions {
  // Path of the AF_UNIX socket to bind. An existing socket file is
  // replaced (the crashed-predecessor case).
  std::string socket_path;
  // Detection configuration for every submission: targets, tv/testgen
  // budgets, use_cache, attribute_findings, and the shared
  // metrics/coverage/trace sinks. num_programs/seed/generator are unused —
  // the traffic stream replaces the generator.
  CampaignOptions campaign;
  // When non-empty, every submission's findings persist as reproducer
  // triples here (manifest-indexed, deduped across submissions).
  std::string corpus_dir;
  // Stop after this many submissions even without a shutdown request;
  // 0 = serve until shutdown. Lets tests and smoke gates bound the loop.
  int max_requests = 0;
  // Telemetry output files. When a path is set and the matching
  // campaign sink is null, the server wires in a sink it owns. The files
  // are (re)written atomically on every status emission and once more —
  // fatally on failure — when Run() returns, so a killed server keeps its
  // telemetry up to the last flush.
  std::string metrics_out;
  std::string coverage_out;
  std::string trace_out;
  // Live-status directory (src/obs/snapshot.h): snapshot + heartbeat every
  // snapshot_interval_ms, plus a sink flush alongside each emission. Empty
  // = no snapshots.
  std::string status_dir;
  int snapshot_interval_ms = 1000;
  // Install SIGTERM/SIGINT handlers for the duration of Run(): a stop
  // signal exits the accept loop gracefully — sinks folded, files flushed,
  // final snapshot phase "done" — instead of killing the process mid-write.
  // Off by default so embedding tests never touch process-global handlers.
  bool install_signal_handlers = false;
};

class GauntletServer {
 public:
  // `bugs` is the base fault set every submission runs against (the
  // server-side seeded compilers); per-request `bug` headers add to it.
  GauntletServer(ServeOptions options, BugConfig bugs);
  ~GauntletServer();
  GauntletServer(const GauntletServer&) = delete;
  GauntletServer& operator=(const GauntletServer&) = delete;

  // Binds and listens; throws CompileError on socket failures. Separate
  // from Run so callers (and tests) know the socket accepts connections
  // before the first client submits.
  void Start();

  // The accept loop: serves until a shutdown request or max_requests.
  // Returns the number of submissions served.
  int Run();

  const std::string& socket_path() const { return options_.socket_path; }
  int served() const { return served_; }

  // Everything absorbed so far, merged in submission order (the traffic
  // stream's index order). Run() folds it into the configured sinks once
  // the accept loop exits.
  const CampaignReport& report() const { return report_; }

 private:
  std::string HandleSubmission(const std::string& payload);
  // Copies the shared state under the mutex, folds the campaign domains on
  // the copies (when not yet folded in place), rewrites the telemetry out
  // files atomically, and returns the status snapshot the state implies.
  // Doubles as the StatusEmitter provider; `final_flush` makes a failed
  // file write fatal instead of best-effort.
  Snapshot FlushAndSnapshot(bool final_flush);

  ServeOptions options_;
  BugConfig base_bugs_;
  int listen_fd_ = -1;
  int served_ = 0;
  bool shutdown_requested_ = false;
  bool folded_ = false;
  CampaignReport report_;
  std::unique_ptr<ValidationCache> cache_;
  std::unique_ptr<CorpusStore> corpus_;
  // Server-owned sinks, wired into options_.campaign by the constructor
  // when an out path (or status dir) asks for telemetry the caller did not
  // inject sinks for.
  MetricsRegistry own_metrics_;
  CoverageMap own_coverage_;
  TraceCollector own_trace_;
  TraceBuffer* trace_buffer_ = nullptr;
  // Guards served_/report_/cache_ and the campaign sinks: the accept loop
  // holds it across each submission, the status emitter thread takes it to
  // copy state for a flush.
  std::mutex state_mutex_;
  std::atomic<const char*> phase_{"starting"};
  uint64_t started_unix_ms_ = 0;
  std::unique_ptr<StatusEmitter> emitter_;
};

// --- client side -----------------------------------------------------------

// Builds a submit-request payload (headers + blank line + program text).
std::string BuildSubmitPayload(const std::string& program_text,
                               const std::vector<std::string>& bug_names,
                               const std::vector<std::string>& target_names);

// The shutdown-request payload.
std::string BuildShutdownPayload();

// Connects to the server, sends one request frame, reads one response
// frame, closes. Returns the response payload (a JSON object); throws
// CompileError on connection or framing failures.
std::string SendServeRequest(const std::string& socket_path, const std::string& payload);

}  // namespace gauntlet

#endif  // SRC_DIST_SERVE_H_
