#include "src/tv/validator.h"

#include <optional>

#include "src/cache/summary_cache.h"
#include "src/cache/verdict_cache.h"
#include "src/frontend/parser.h"
#include "src/frontend/printer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sym/interpreter.h"
#include "src/typecheck/typecheck.h"

namespace gauntlet {

std::string TvVerdictToString(TvVerdict verdict) {
  switch (verdict) {
    case TvVerdict::kEquivalent:
      return "equivalent";
    case TvVerdict::kUndefDivergence:
      return "undefined-value divergence";
    case TvVerdict::kSemanticDiff:
      return "semantic difference";
    case TvVerdict::kStructuralMismatch:
      return "structural mismatch";
    case TvVerdict::kInvalidEmit:
      return "invalid emitted program";
  }
  return "<invalid>";
}

namespace {

// Short metric-key slug for a verdict (TvVerdictToString is prose).
std::string_view TvVerdictSlug(TvVerdict verdict) {
  switch (verdict) {
    case TvVerdict::kEquivalent:
      return "equivalent";
    case TvVerdict::kUndefDivergence:
      return "undef-divergence";
    case TvVerdict::kSemanticDiff:
      return "semantic-diff";
    case TvVerdict::kStructuralMismatch:
      return "structural-mismatch";
    case TvVerdict::kInvalidEmit:
      return "invalid-emit";
  }
  return "invalid";
}

// Every finalized pass-pair verdict flows through here. Timing scope:
// structural-mismatch counts include budget exhaustion, which is
// wall-clock dependent.
void RecordPassResult(const TvPassResult& result) {
  CountMetric("tv/pairs", MetricScope::kTiming);
  CountMetric("tv/verdict/" + std::string(TvVerdictSlug(result.verdict)), MetricScope::kTiming);
}

// Per-version interpretation cache used while validating one program
// through the whole pipeline. All versions share one SmtContext so that (a)
// identically named inputs unify, (b) hash-consing dedupes the largely
// identical DAGs of consecutive versions, and (c) each version is
// interpreted once even though it participates in two pass pairs (as the
// "after" of its own pass and the "before" of the next).
struct VersionSemantics {
  bool failed = false;
  std::string failure;
  std::vector<std::pair<BlockRole, BlockSemantics>> blocks;
  // Parallel to `blocks`: each block's summary-cache key (invalid when the
  // cache was off or the block's declaration could not be keyed).
  std::vector<Fingerprint> summary_keys;
};

// The memoization toggle: non-null only when a cache is attached and the
// options allow it (--no-incremental clears memoize_block_summaries).
SummaryCache* SummariesOf(ValidationCache* cache, const TvOptions& options) {
  return (cache != nullptr && options.memoize_block_summaries) ? &cache->summaries() : nullptr;
}

VersionSemantics InterpretVersion(SymbolicInterpreter& interpreter, const Program& program,
                                  ValidationCache* cache, const TvOptions& options) {
  VersionSemantics result;
  SummaryCache* summaries = SummariesOf(cache, options);
  Fingerprint environment;
  if (summaries != nullptr) {
    environment = BlockEnvironmentFingerprint(program, interpreter.table_entries());
  }
  try {
    for (const PackageBlock& block : program.package()) {
      Fingerprint key;
      if (summaries != nullptr) {
        key = BlockSummaryKey(environment, program, block);
        if (key.IsValid()) {
          if (const BlockSemantics* hit = summaries->Find(key)) {
            // An AST-identical block was already interpreted into this
            // context: re-interpreting would return the same SmtRefs (fresh
            // per-call undef numbering + hash-consing), so reuse is
            // invisible to every downstream query.
            result.blocks.emplace_back(block.role, *hit);
            result.summary_keys.push_back(key);
            continue;
          }
        }
      }
      result.blocks.emplace_back(block.role, interpreter.InterpretRole(program, block.role));
      result.summary_keys.push_back(key);
      if (summaries != nullptr && key.IsValid()) {
        summaries->Insert(key, result.blocks.back().second);
      }
    }
  } catch (const UnsupportedError& error) {
    result.failed = true;
    result.failure = std::string("interpreter limitation: ") + error.what();
  }
  return result;
}

// The canonical fingerprint of a whole version: every block's role plus its
// semantics fingerprint, in block order. Equal fingerprints imply the
// versions are input-output equivalent block by block. Blocks with a
// summary key consult the cache's persisted key → fingerprint table first —
// the mapping is functional, so a stored fingerprint equals what canonical
// hashing would compute, and a warm --cache-file run skips the DAG walk.
Fingerprint VersionFingerprint(StructHasher& hasher, const VersionSemantics& version,
                               SummaryCache* summaries) {
  Fingerprint fp = FingerprintOfString("version-semantics");
  for (size_t i = 0; i < version.blocks.size(); ++i) {
    const auto& [role, semantics] = version.blocks[i];
    fp = CombineFingerprints(fp, FingerprintOfString(BlockRoleToString(role)));
    const Fingerprint key =
        i < version.summary_keys.size() ? version.summary_keys[i] : Fingerprint{};
    if (summaries != nullptr && key.IsValid()) {
      if (const Fingerprint* stored = summaries->FindSemanticsFingerprint(key)) {
        fp = CombineFingerprints(fp, *stored);
        continue;
      }
    }
    const Fingerprint semantics_fp = SemanticsFingerprint(hasher, semantics);
    if (summaries != nullptr && key.IsValid()) {
      summaries->RecordSemanticsFingerprint(key, semantics_fp);
    }
    fp = CombineFingerprints(fp, semantics_fp);
  }
  return fp;
}

TvPassResult CompareSemantics(SmtContext& ctx, const VersionSemantics& before,
                              const VersionSemantics& after, const std::string& pass_name,
                              const TvOptions& options, ValidationCache* cache,
                              StructHasher* canonical_hasher) {
  TvPassResult result;
  result.pass_name = pass_name;
  if (before.failed || after.failed) {
    result.verdict = TvVerdict::kStructuralMismatch;
    result.detail = before.failed ? before.failure : after.failure;
    return result;
  }

  // Memoized equivalence queries: a pair whose canonical fingerprints are
  // equal is equivalent outright (commutative reshuffles included); a pair
  // matching an already-answered pair reuses that verdict (and, for a
  // semantic diff, its witness) without touching the solver.
  Fingerprint fp_before;
  Fingerprint fp_after;
  if (cache != nullptr) {
    SummaryCache* summaries = SummariesOf(cache, options);
    fp_before = VersionFingerprint(*canonical_hasher, before, summaries);
    fp_after = VersionFingerprint(*canonical_hasher, after, summaries);
    if (fp_before == fp_after) {
      cache->CountShortCircuit();
      result.verdict = TvVerdict::kEquivalent;
      return result;
    }
    if (const VerdictCache::Entry* hit = cache->verdicts().Find(fp_before, fp_after)) {
      cache->CountSkippedQueries(hit->queries);
      result = hit->result;
      result.pass_name = pass_name;
      return result;
    }
  }
  const auto remember = [&](const TvPassResult& definitive, uint32_t queries) {
    if (cache != nullptr) {
      cache->verdicts().Insert(fp_before, fp_after, definitive, queries);
    }
  };

  SmtRef any_difference = ctx.False();
  for (const auto& [role, before_sem] : before.blocks) {
    const BlockSemantics* after_sem = nullptr;
    for (const auto& [after_role, sem] : after.blocks) {
      if (after_role == role) {
        after_sem = &sem;
        break;
      }
    }
    if (after_sem == nullptr) {
      result.verdict = TvVerdict::kStructuralMismatch;
      result.detail = BlockRoleToString(role) + ": block missing after pass";
      return result;
    }
    const EquivalenceQuery query = BuildEquivalenceQuery(ctx, before_sem, *after_sem);
    if (query.structural_mismatch) {
      result.verdict = TvVerdict::kStructuralMismatch;
      result.detail = BlockRoleToString(role) + ": " + query.mismatch_detail;
      return result;
    }
    any_difference = ctx.BoolOr(any_difference, query.difference);
  }
  // Fast path: when a pass made no semantic change, hash-consing collapses
  // every per-block difference to the constant false — no SAT call needed.
  if (ctx.IsConst(any_difference) && ctx.ConstBits(any_difference) == 0) {
    result.verdict = TvVerdict::kEquivalent;
    remember(result, /*queries=*/0);
    return result;
  }

  // Query 1: is there any input on which the versions disagree? Conflict
  // and wall-clock budgets keep pathological instances (wide-multiplier
  // equivalence) from stalling a campaign; exhaustion is reported like a
  // missing simulation relation (a pass we could not validate, §8).
  SmtSolver solver(ctx);
  if (cache != nullptr) {
    solver.set_blast_cache(&cache->blast());
  }
  solver.set_conflict_limit(options.conflict_budget);
  solver.set_time_limit_ms(options.query_time_limit_ms);
  solver.Assert(any_difference);
  const CheckResult first = solver.Check();
  if (first == CheckResult::kUnsat) {
    result.verdict = TvVerdict::kEquivalent;
    remember(result, /*queries=*/1);
    return result;
  }
  if (first == CheckResult::kUnknown) {
    result.verdict = TvVerdict::kStructuralMismatch;
    result.detail = "solver budget (conflicts or wall clock) exceeded";
    return result;
  }

  // Query 2: does the disagreement survive pinning every undefined value to
  // zero? If not, the pass only reshuffled undefined behavior.
  SmtSolver pinned_solver(ctx);
  if (cache != nullptr) {
    pinned_solver.set_blast_cache(&cache->blast());
  }
  pinned_solver.set_conflict_limit(options.conflict_budget);
  pinned_solver.set_time_limit_ms(options.query_time_limit_ms);
  pinned_solver.Assert(any_difference);
  for (uint32_t var_id = 0; var_id < ctx.VarCount(); ++var_id) {
    const std::string& name = ctx.VarName(var_id);
    if (name.rfind("undef", 0) == 0) {
      const SmtRef var = ctx.FindVar(name);
      if (ctx.VarIsBool(var_id)) {
        pinned_solver.Assert(ctx.BoolNot(var));
      } else {
        pinned_solver.Assert(ctx.Eq(var, ctx.Const(ctx.VarWidth(var_id), 0)));
      }
    }
  }
  const CheckResult pinned = pinned_solver.Check();
  if (pinned == CheckResult::kUnsat) {
    result.verdict = TvVerdict::kUndefDivergence;
    result.detail = "versions differ only in undefined-value choices";
    remember(result, /*queries=*/2);
    return result;
  }
  if (pinned == CheckResult::kUnknown) {
    result.verdict = TvVerdict::kStructuralMismatch;
    result.detail = "solver budget exceeded (undef classification)";
    return result;
  }
  result.verdict = TvVerdict::kSemanticDiff;
  result.counterexample = pinned_solver.ExtractModel();
  result.detail = "solver found a disagreeing input";
  remember(result, /*queries=*/2);
  return result;
}

}  // namespace

TvPassResult TranslationValidator::CompareVersions(const Program& before, const Program& after,
                                                   const std::string& pass_name,
                                                   ValidationCache* cache, TvOptions options) {
  TraceSpan span("tv:" + pass_name, "tv");
  SmtContext ctx;
  SymbolicInterpreter interpreter(ctx, options.symbolic_table_entries);
  if (cache != nullptr) {
    // Cached block summaries hold SmtRefs of the previous context.
    cache->summaries().BeginContext();
  }
  const VersionSemantics before_sem = InterpretVersion(interpreter, before, cache, options);
  const VersionSemantics after_sem = InterpretVersion(interpreter, after, cache, options);
  std::optional<StructHasher> canonical;
  if (cache != nullptr) {
    canonical.emplace(ctx, StructHasher::Mode::kCanonical);
  }
  TvPassResult result = CompareSemantics(ctx, before_sem, after_sem, pass_name, options, cache,
                                         canonical.has_value() ? &*canonical : nullptr);
  RecordPassResult(result);
  return result;
}

TvReport TranslationValidator::Validate(const Program& program, const BugConfig& bugs,
                                        const std::string& stop_after_pass,
                                        ValidationCache* cache) const {
  TvReport report;

  // Version 0: the type-checked input program.
  auto& versions = report.versions;
  ProgramPtr current = program.Clone();
  try {
    TraceSpan span("typecheck", "tv");
    TypeCheck(*current, TypeCheckOptionsFromBugs(bugs));
  } catch (const std::exception& error) {
    report.crashed = true;
    report.crash_message = std::string("type checking: ") + error.what();
    return report;
  }
  versions.emplace_back("<input>", current->Clone());

  try {
    TraceSpan span("passes", "tv");
    pipeline_.Run(*current, bugs, [&](const std::string& pass_name, const Program& snapshot) {
      versions.emplace_back(pass_name, snapshot.Clone());
    });
  } catch (const std::exception& error) {
    report.crashed = true;
    report.crash_message = error.what();
    // Versions captured before the crash are still validated below — the
    // paper likewise pinpoints the earliest broken pass.
  }

  // All versions are interpreted into one shared context: hash-consing
  // dedupes the largely identical DAGs of consecutive versions, and a pass
  // that changed nothing semantically short-circuits to a constant-false
  // difference without a SAT call.
  SmtContext ctx;
  SymbolicInterpreter interpreter(ctx, options_.symbolic_table_entries);
  // One canonical hasher spans every pass pair: its per-node memo is what
  // makes re-fingerprinting the shared version of consecutive pairs cheap.
  std::optional<StructHasher> canonical;
  if (cache != nullptr) {
    canonical.emplace(ctx, StructHasher::Mode::kCanonical);
    // Cached block summaries hold SmtRefs of the previous context. Within
    // this context, blocks the pipeline never touched — typically the
    // parser and deparser of every single version — interpret once total.
    cache->summaries().BeginContext();
  }
  VersionSemantics before_sem =
      InterpretVersion(interpreter, *versions[0].second, cache, options_);
  const auto validation_deadline =
      options_.program_budget_ms == 0
          ? std::chrono::steady_clock::time_point::max()
          : std::chrono::steady_clock::now() +
                std::chrono::milliseconds(options_.program_budget_ms);
  for (size_t i = 1; i < versions.size(); ++i) {
    const auto& [pass_name, after] = versions[i];
    if (std::chrono::steady_clock::now() >= validation_deadline) {
      // Out of budget for this program: report the remaining passes as
      // unvalidatable instead of stalling the campaign.
      TvPassResult skipped;
      skipped.pass_name = pass_name;
      skipped.verdict = TvVerdict::kStructuralMismatch;
      skipped.detail = "per-program validation budget exceeded";
      RecordPassResult(skipped);
      report.pass_results.push_back(std::move(skipped));
      continue;
    }
    TraceSpan pair_span("tv:" + pass_name, "tv");
    // Re-parse the emitted program first (ToP4 round-trip, §5.2). Failure is
    // an "invalid transformation" bug.
    TvPassResult result;
    result.pass_name = pass_name;
    ProgramPtr reparsed;
    try {
      reparsed = Parser::ParseString(PrintProgram(*after));
      TypeCheck(*reparsed);
    } catch (const std::exception& error) {
      result.verdict = TvVerdict::kInvalidEmit;
      result.detail = error.what();
      RecordPassResult(result);
      report.pass_results.push_back(std::move(result));
      break;
    }
    // The comparison runs against the *reparsed* program, so a semantics-
    // changing ToP4 or parser bug is caught alongside pass bugs (§5.2).
    VersionSemantics after_sem = InterpretVersion(interpreter, *reparsed, cache, options_);
    report.pass_results.push_back(
        CompareSemantics(ctx, before_sem, after_sem, pass_name, options_, cache,
                         canonical.has_value() ? &*canonical : nullptr));
    RecordPassResult(report.pass_results.back());
    if (!stop_after_pass.empty() && pass_name == stop_after_pass) {
      break;
    }
    if (HashProgram(*reparsed) == HashProgram(*after)) {
      // Round trip was faithful: reuse the interpretation as the "before"
      // of the next pass pair.
      before_sem = std::move(after_sem);
    } else {
      // The printed program re-parsed to a different AST. Keep validating
      // from the in-memory snapshot so a printer bug does not cascade into
      // every later pass's verdict.
      before_sem = InterpretVersion(interpreter, *after, cache, options_);
    }
  }
  return report;
}

}  // namespace gauntlet
