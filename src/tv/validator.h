#ifndef SRC_TV_VALIDATOR_H_
#define SRC_TV_VALIDATOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/ast/program.h"
#include "src/passes/pass.h"
#include "src/smt/solver.h"
#include "src/sym/interpreter.h"

namespace gauntlet {

class ValidationCache;

// Verdict for one compiler pass under translation validation.
enum class TvVerdict {
  kEquivalent,          // proven input-output equivalent
  kUndefDivergence,     // differs only on undefined values — reported to
                        // developers as "suspicious but not necessarily
                        // wrong" (§4.1), like the Fig. 5e warning
  kSemanticDiff,        // proven miscompilation with a concrete witness
  kStructuralMismatch,  // outputs not comparable (renamed/reshaped) — the
                        // §8 "missing simulation relation" false-alarm class
  kInvalidEmit,         // emitted program does not re-parse/re-typecheck
};

std::string TvVerdictToString(TvVerdict verdict);

struct TvPassResult {
  std::string pass_name;
  TvVerdict verdict = TvVerdict::kEquivalent;
  std::string detail;
  // For kSemanticDiff: a witness assignment (input packet fields, table
  // entries) under which the two versions disagree.
  SmtModel counterexample;
};

// Outcome of validating one program through the whole pipeline (Fig. 2).
struct TvReport {
  // Pipeline crashed before completing (crash bug): message and the pass
  // after which the crash surfaced.
  bool crashed = false;
  std::string crash_message;

  std::vector<TvPassResult> pass_results;

  // The emitted program versions: versions[0] is the type-checked input,
  // each later entry is (pass name, program after that pass), hash-filtered
  // to passes that changed the program. Fault attribution uses these to
  // re-run a single blamed pass instead of the whole pipeline.
  std::vector<std::pair<std::string, std::shared_ptr<const Program>>> versions;

  bool HasSemanticDiff() const {
    for (const TvPassResult& result : pass_results) {
      if (result.verdict == TvVerdict::kSemanticDiff) {
        return true;
      }
    }
    return false;
  }
  const TvPassResult* FirstNonEquivalent() const {
    for (const TvPassResult& result : pass_results) {
      if (result.verdict != TvVerdict::kEquivalent) {
        return &result;
      }
    }
    return nullptr;
  }
};

// Resource budgets for one validation. Equivalence proofs over wide
// arithmetic are exponential in the bit width, so both the SAT effort per
// query and the wall-clock per program are bounded; exhaustion surfaces as
// kStructuralMismatch ("a pass we could not validate", like the 4-of-57
// passes the paper could not handle, §8) rather than stalling a campaign.
struct TvOptions {
  uint64_t conflict_budget = 120000;     // SAT conflicts per query
  uint64_t query_time_limit_ms = 250;    // wall clock per solver query
  uint64_t program_budget_ms = 1500;     // wall clock per validated program
  // Symbolic entry slots per table (src/table/entry_set.h). Both versions of
  // a pass pair are encoded with the same count so their table variables
  // unify. Defaults to 1: a single symbolic entry already quantifies over
  // arbitrary installed contents, and no pass can touch control-plane state,
  // so extra slots only grow the equivalence queries. Test generation runs
  // the same shared encoding at kDefaultSymbolicTableEntries, where the
  // extra slots *do* buy new scenarios (non-first-entry hits, shadowing).
  size_t symbolic_table_entries = 1;
  // Block-level summary memoization (src/cache/summary_cache.h): blocks a
  // pass left textually unchanged reuse the interpretation of the previous
  // version instead of being re-interpreted. --no-incremental turns it off
  // for A/B runs; a memoized interpretation is the very SmtRefs a fresh one
  // would return, so every verdict and report byte is identical either way.
  // Only consulted when a ValidationCache is attached.
  bool memoize_block_summaries = true;
};

// The translation-validation engine: runs the pass pipeline on a copy of
// `program`, captures the emitted program after every pass that changed it
// (hash-filtered, like the paper §5.2), re-parses each emission to catch
// ToP4/transform bugs, and checks consecutive versions for equivalence
// block-by-block.
//
// Divergences that vanish when every undefined value is pinned to zero are
// classified kUndefDivergence rather than kSemanticDiff, implementing the
// paper's "own semantics for undefined behavior" policy without false
// alarms from undef renumbering.
class TranslationValidator {
 public:
  explicit TranslationValidator(PassManager pipeline, TvOptions options = {})
      : pipeline_(std::move(pipeline)), options_(options) {}

  // Validates `program` through the pipeline. When `stop_after_pass` is
  // non-empty, pass-pair comparison stops once that pass has a verdict —
  // the fault-attribution reruns only need the blamed pass's verdict, not
  // the whole pipeline's.
  //
  // With a `cache` (src/cache/), bit-blasted fragments are reused across
  // the pass pairs' solver queries and hash-matching pairs skip their
  // queries outright. Verdicts are identical with or without a cache
  // whenever the uncached queries finish within their budgets (a repeated
  // kSemanticDiff pair reuses the first pair's witness instead of
  // re-solving for one); where an uncached query would exhaust its budget,
  // a verdict-cache hit can only upgrade that "could not validate" outcome
  // into the proven verdict.
  TvReport Validate(const Program& program, const BugConfig& bugs,
                    const std::string& stop_after_pass = {},
                    ValidationCache* cache = nullptr) const;

  // Compares two standalone programs (all package blocks pairwise).
  static TvPassResult CompareVersions(const Program& before, const Program& after,
                                      const std::string& pass_name,
                                      ValidationCache* cache = nullptr,
                                      TvOptions options = {});

 private:
  PassManager pipeline_;
  TvOptions options_;
};

}  // namespace gauntlet

#endif  // SRC_TV_VALIDATOR_H_
