#ifndef SRC_PASSES_FRONTEND_PASSES_H_
#define SRC_PASSES_FRONTEND_PASSES_H_

#include <memory>

#include "src/passes/pass.h"

namespace gauntlet {

// Hoists function-call subexpressions into temporaries so later passes only
// see calls in statement position. Seeded fault kSideEffectOrderSwap
// reverses sibling evaluation order (§7.2's argument-evaluation bug class).
std::unique_ptr<Pass> MakeSideEffectOrderingPass();

// Inlines all top-level function calls (which, after SideEffectOrdering,
// appear only as `x = f(..)`, `T v = f(..)`, or `f(..);`). Seeded fault
// kInlinerSkipsNestedCall leaves calls inside if-branches uninlined; back
// ends that require call-free programs then crash (§7.2 snowball effects).
std::unique_ptr<Pass> MakeInlineFunctionsPass();

// Inlines direct action calls, materializing copy-in/copy-out as explicit
// temporaries — the role p4c's RemoveActionParameters plays. Seeded fault
// kExitIgnoresCopyOut omits the copy-out duplication before `exit`,
// reproducing Fig. 5f.
std::unique_ptr<Pass> MakeRemoveActionParametersPass();

// Renames every local variable to a program-unique name. Seeded fault
// kRenameDeclaredUndefined additionally hoists uninitialized declarations,
// reordering undefined-value allocation — the §8 false-alarm class.
std::unique_ptr<Pass> MakeUniqueNamesPass();

// Evaluates constant expressions. Seeded fault kConstantFoldWrapWidth
// mis-folds arithmetic whose 64-bit result overflows the declared width.
std::unique_ptr<Pass> MakeConstantFoldingPass();

// Algebraic simplifications (x*2^k -> x<<k, x&0 -> 0, ...). Seeded fault
// kStrengthReductionNegativeSlice rewrites right-shifts into slices with
// inverted bounds, making the re-type-check reject a valid program
// (Fig. 5c's root cause).
std::unique_ptr<Pass> MakeStrengthReductionPass();

// Dead-store elimination. Seeded faults: kSimplifyDefUseDropsInoutWrite
// ignores inout/out argument uses (Fig. 5a); kSliceWriteTreatedAsFullDef
// treats partial (slice) writes as full definitions (Fig. 5d).
std::unique_ptr<Pass> MakeSimplifyDefUsePass();

}  // namespace gauntlet

#endif  // SRC_PASSES_FRONTEND_PASSES_H_
