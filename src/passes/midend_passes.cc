#include "src/passes/midend_passes.h"

#include <map>
#include <set>

#include "src/ast/visitor.h"
#include "src/frontend/printer.h"

namespace gauntlet {

namespace {

std::unique_ptr<BlockStmt> AsBlock(StmtPtr stmt) {
  if (stmt->kind() == StmtKind::kBlock) {
    return std::unique_ptr<BlockStmt>(static_cast<BlockStmt*>(stmt.release()));
  }
  auto block = std::make_unique<BlockStmt>();
  block->Append(std::move(stmt));
  return block;
}

// ===========================================================================
// Predication
// ===========================================================================

class PredicationPass : public Pass {
 public:
  std::string name() const override { return "Predication"; }
  BugLocation location() const override { return BugLocation::kMidEnd; }

  void Run(Program& program, const BugConfig& bugs) override {
    lost_else_ = bugs.Has(BugId::kPredicationLostElse);
    NameAllocator names(program);
    for (const DeclPtr& decl : program.mutable_decls()) {
      if (decl->kind() != DeclKind::kControl) {
        continue;
      }
      auto& control = static_cast<ControlDecl&>(*decl);
      for (const DeclPtr& local : control.mutable_locals()) {
        if (local->kind() == DeclKind::kAction) {
          ProcessBlock(*static_cast<ActionDecl&>(*local).mutable_body(), names);
        }
      }
    }
  }

 private:
  // True if the subtree consists solely of assignments (after recursion,
  // converted ifs have become assignments too).
  static bool OnlyAssignments(const Stmt& stmt) {
    switch (stmt.kind()) {
      case StmtKind::kAssign:
      case StmtKind::kEmpty:
        return true;
      case StmtKind::kBlock: {
        for (const StmtPtr& child : static_cast<const BlockStmt&>(stmt).statements()) {
          if (!OnlyAssignments(*child)) {
            return false;
          }
        }
        return true;
      }
      default:
        return false;
    }
  }

  void ProcessBlock(BlockStmt& block, NameAllocator& names) {
    std::vector<StmtPtr> out;
    for (StmtPtr& stmt : block.mutable_statements()) {
      if (stmt->kind() == StmtKind::kBlock) {
        ProcessBlock(static_cast<BlockStmt&>(*stmt), names);
        out.push_back(std::move(stmt));
        continue;
      }
      if (stmt->kind() != StmtKind::kIf) {
        out.push_back(std::move(stmt));
        continue;
      }
      auto& if_stmt = static_cast<IfStmt&>(*stmt);
      // Bottom-up: predicate nested ifs first.
      if_stmt.then_slot() = AsBlock(std::move(if_stmt.then_slot()));
      ProcessBlock(static_cast<BlockStmt&>(*if_stmt.then_slot()), names);
      if (if_stmt.else_slot() != nullptr) {
        if_stmt.else_slot() = AsBlock(std::move(if_stmt.else_slot()));
        ProcessBlock(static_cast<BlockStmt&>(*if_stmt.else_slot()), names);
      }
      const bool convertible =
          OnlyAssignments(*if_stmt.then_slot()) &&
          (if_stmt.else_slot() == nullptr || OnlyAssignments(*if_stmt.else_slot()));
      if (!convertible) {
        out.push_back(std::move(stmt));
        continue;
      }
      // Hoist the condition into a predicate variable: branch bodies may
      // write variables the condition reads.
      const std::string pred = names.Fresh("pred");
      out.push_back(
          std::make_unique<VarDeclStmt>(pred, Type::Bool(), std::move(if_stmt.cond_slot())));
      EmitPredicated(static_cast<BlockStmt&>(*if_stmt.then_slot()), pred, /*negate=*/false, out);
      if (if_stmt.else_slot() != nullptr && !lost_else_) {
        // Seeded fault: the else branch is silently dropped.
        EmitPredicated(static_cast<BlockStmt&>(*if_stmt.else_slot()), pred, /*negate=*/true,
                       out);
      }
    }
    block.mutable_statements() = std::move(out);
    FlattenBlocks(block);
  }

  void EmitPredicated(BlockStmt& branch, const std::string& pred, bool negate,
                      std::vector<StmtPtr>& out) {
    for (StmtPtr& stmt : branch.mutable_statements()) {
      if (stmt->kind() == StmtKind::kEmpty) {
        continue;
      }
      if (stmt->kind() == StmtKind::kBlock) {
        EmitPredicated(static_cast<BlockStmt&>(*stmt), pred, negate, out);
        continue;
      }
      GAUNTLET_BUG_CHECK(stmt->kind() == StmtKind::kAssign, "predication on non-assignment");
      auto& assign = static_cast<AssignStmt&>(*stmt);
      ExprPtr cond = negate ? MakeUnary(UnaryOp::kLogicalNot, MakePath(pred)) : MakePath(pred);
      // x = pred ? value : x   (x = pred ? x : value when negated)
      ExprPtr old_value = assign.target().Clone();
      auto mux = std::make_unique<MuxExpr>(std::move(cond), std::move(assign.value_slot()),
                                           std::move(old_value));
      out.push_back(
          std::make_unique<AssignStmt>(std::move(assign.target_slot()), std::move(mux)));
    }
  }

  bool lost_else_ = false;
};

// ===========================================================================
// CopyPropagation
// ===========================================================================

class CopyPropagationPass : public Pass {
 public:
  std::string name() const override { return "CopyPropagation"; }
  BugLocation location() const override { return BugLocation::kMidEnd; }

  void Run(Program& program, const BugConfig& bugs) override {
    ignore_validity_ = bugs.Has(BugId::kInvalidHeaderCopyProp);
    for (const DeclPtr& decl : program.mutable_decls()) {
      if (decl->kind() != DeclKind::kControl) {
        continue;
      }
      auto& control = static_cast<ControlDecl&>(*decl);
      std::map<std::string, ExprPtr> copies;
      ProcessBlock(*control.mutable_apply(), copies);
      for (const DeclPtr& local : control.mutable_locals()) {
        if (local->kind() == DeclKind::kAction) {
          std::map<std::string, ExprPtr> action_copies;
          ProcessBlock(*static_cast<ActionDecl&>(*local).mutable_body(), action_copies);
        }
      }
    }
  }

 private:
  // A "simple" expression is a path, member chain, or constant — safe to
  // remember and substitute.
  static bool IsSimple(const Expr& expr) {
    switch (expr.kind()) {
      case ExprKind::kConstant:
      case ExprKind::kBoolConst:
      case ExprKind::kPath:
        return true;
      case ExprKind::kMember:
        return IsSimple(static_cast<const MemberExpr&>(expr).base());
      default:
        return false;
    }
  }

  // Dotted-prefix overlap: writing "h.h" clobbers "h.h.a" and vice versa.
  static bool Overlaps(const std::string& a, const std::string& b) {
    if (a == b) {
      return true;
    }
    if (a.size() < b.size()) {
      return b.compare(0, a.size(), a) == 0 && b[a.size()] == '.';
    }
    return a.compare(0, b.size(), b) == 0 && a[b.size()] == '.';
  }

  void InvalidateWrites(std::map<std::string, ExprPtr>& copies, const std::string& written) {
    for (auto it = copies.begin(); it != copies.end();) {
      const bool key_hit = Overlaps(it->first, written);
      const bool value_hit = Overlaps(PrintExpr(*it->second), written);
      it = key_hit || value_hit ? copies.erase(it) : std::next(it);
    }
  }

  void SubstituteReads(ExprPtr& slot, const std::map<std::string, ExprPtr>& copies) {
    class Substituter : public Rewriter {
     public:
      explicit Substituter(const std::map<std::string, ExprPtr>& copies) : copies_(copies) {}

     protected:
      ExprPtr Replace(const Expr& expr) {
        auto it = copies_.find(PrintExpr(expr));
        if (it != copies_.end()) {
          ExprPtr clone = it->second->Clone();
          clone->set_type(expr.type());
          return clone;
        }
        return nullptr;
      }
      ExprPtr PostPath(PathExpr& path) override { return Replace(path); }
      ExprPtr PostMember(MemberExpr& member) override { return Replace(member); }
      bool RewritesLValues() const override { return false; }

     private:
      const std::map<std::string, ExprPtr>& copies_;
    };
    Substituter substituter(copies);
    substituter.RewriteExpr(slot);
  }

  void ProcessBlock(BlockStmt& block, std::map<std::string, ExprPtr>& copies) {
    for (StmtPtr& stmt : block.mutable_statements()) {
      switch (stmt->kind()) {
        case StmtKind::kBlock:
          ProcessBlock(static_cast<BlockStmt&>(*stmt), copies);
          break;
        case StmtKind::kAssign: {
          auto& assign = static_cast<AssignStmt&>(*stmt);
          SubstituteReads(assign.value_slot(), copies);
          const std::string target = PrintExpr(assign.target());
          InvalidateWrites(copies, assign.target().kind() == ExprKind::kSlice
                                       ? PrintExpr(
                                             static_cast<const SliceExpr&>(assign.target()).base())
                                       : target);
          if (assign.target().kind() != ExprKind::kSlice && IsSimple(assign.value())) {
            copies[target] = assign.value().Clone();
          }
          break;
        }
        case StmtKind::kVarDecl: {
          auto& var_decl = static_cast<VarDeclStmt&>(*stmt);
          if (var_decl.init() != nullptr) {
            SubstituteReads(var_decl.init_slot(), copies);
            if (IsSimple(*var_decl.init())) {
              copies[var_decl.name()] = var_decl.init()->Clone();
            }
          }
          break;
        }
        case StmtKind::kIf: {
          auto& if_stmt = static_cast<IfStmt&>(*stmt);
          SubstituteReads(if_stmt.cond_slot(), copies);
          std::map<std::string, ExprPtr> then_copies;
          for (const auto& [key, value] : copies) {
            then_copies.emplace(key, value->Clone());
          }
          if_stmt.then_slot() = AsBlock(std::move(if_stmt.then_slot()));
          ProcessBlock(static_cast<BlockStmt&>(*if_stmt.then_slot()), then_copies);
          if (if_stmt.else_slot() != nullptr) {
            std::map<std::string, ExprPtr> else_copies;
            for (const auto& [key, value] : copies) {
              else_copies.emplace(key, value->Clone());
            }
            if_stmt.else_slot() = AsBlock(std::move(if_stmt.else_slot()));
            ProcessBlock(static_cast<BlockStmt&>(*if_stmt.else_slot()), else_copies);
          }
          // Conservative join: drop everything (branches may clobber).
          copies.clear();
          break;
        }
        case StmtKind::kCall: {
          auto& call = static_cast<CallStmt&>(*stmt).mutable_call();
          switch (call.call_kind()) {
            case CallKind::kSetValid:
            case CallKind::kSetInvalid: {
              // Validity changes scramble or canonicalize fields: any copy
              // involving this header is stale. The seeded Fig. 5e fault
              // skips this invalidation.
              if (!ignore_validity_) {
                InvalidateWrites(copies, PrintExpr(*call.receiver()));
              }
              break;
            }
            case CallKind::kTableApply:
            case CallKind::kAction:
            case CallKind::kFunction:
              // May write arbitrary captured state.
              copies.clear();
              break;
            case CallKind::kEmit: {
              // Reads only; substitution inside emit is unsafe for l-values,
              // so leave the receiver untouched.
              break;
            }
            default:
              break;
          }
          break;
        }
        case StmtKind::kReturn: {
          auto& return_stmt = static_cast<ReturnStmt&>(*stmt);
          if (return_stmt.value() != nullptr) {
            SubstituteReads(return_stmt.value_slot(), copies);
          }
          break;
        }
        case StmtKind::kExit:
        case StmtKind::kEmpty:
          break;
      }
    }
  }

  bool ignore_validity_ = false;
};

// ===========================================================================
// LocalCopyElimination
// ===========================================================================

class LocalCopyEliminationPass : public Pass {
 public:
  std::string name() const override { return "LocalCopyElimination"; }
  BugLocation location() const override { return BugLocation::kMidEnd; }

  void Run(Program& program, const BugConfig& bugs) override {
    skip_write_check_ = bugs.Has(BugId::kTempSubstAcrossWrite);
    for (const DeclPtr& decl : program.mutable_decls()) {
      if (decl->kind() != DeclKind::kControl) {
        continue;
      }
      auto& control = static_cast<ControlDecl&>(*decl);
      ProcessBlock(*control.mutable_apply());
      for (const DeclPtr& local : control.mutable_locals()) {
        if (local->kind() == DeclKind::kAction) {
          ProcessBlock(*static_cast<ActionDecl&>(*local).mutable_body());
        }
      }
    }
  }

 private:
  // Roots of every variable `expr` reads.
  static void CollectReadRoots(const Expr& expr, std::set<std::string>& roots) {
    class Collector : public Inspector {
     public:
      explicit Collector(std::set<std::string>& roots) : roots_(roots) {}

     protected:
      void OnExpr(const Expr& expr) override {
        if (expr.kind() == ExprKind::kPath) {
          roots_.insert(static_cast<const PathExpr&>(expr).name());
        }
      }

     private:
      std::set<std::string>& roots_;
    };
    Collector collector(roots);
    collector.VisitExpr(expr);
  }

  static size_t CountReads(const Stmt& stmt, const std::string& name) {
    class Counter : public Inspector {
     public:
      explicit Counter(const std::string& name) : name_(name) {}
      size_t count = 0;

     protected:
      void OnExpr(const Expr& expr) override {
        if (expr.kind() == ExprKind::kPath &&
            static_cast<const PathExpr&>(expr).name() == name_) {
          ++count;
        }
      }

     private:
      const std::string& name_;
    };
    Counter counter(name);
    counter.VisitStmt(stmt);
    return counter.count;
  }

  // Whether the statement may write state (assign target roots, calls).
  static bool StatementClobbers(const Stmt& stmt, const std::set<std::string>& roots) {
    switch (stmt.kind()) {
      case StmtKind::kAssign:
        return roots.count(LValueRoot(static_cast<const AssignStmt&>(stmt).target())) > 0;
      case StmtKind::kCall:
        return true;  // conservatively: any call may clobber captured state
      case StmtKind::kIf:
      case StmtKind::kBlock:
        return true;  // conservative for nested control flow
      default:
        return false;
    }
  }

  void ProcessBlock(BlockStmt& block) {
    std::vector<StmtPtr>& stmts = block.mutable_statements();
    for (size_t i = 0; i < stmts.size(); ++i) {
      if (stmts[i]->kind() == StmtKind::kBlock) {
        ProcessBlock(static_cast<BlockStmt&>(*stmts[i]));
        continue;
      }
      if (stmts[i]->kind() == StmtKind::kIf) {
        auto& if_stmt = static_cast<IfStmt&>(*stmts[i]);
        if (if_stmt.then_slot()->kind() == StmtKind::kBlock) {
          ProcessBlock(static_cast<BlockStmt&>(*if_stmt.then_slot()));
        }
        if (if_stmt.else_slot() != nullptr &&
            if_stmt.else_slot()->kind() == StmtKind::kBlock) {
          ProcessBlock(static_cast<BlockStmt&>(*if_stmt.else_slot()));
        }
        continue;
      }
      if (stmts[i]->kind() != StmtKind::kVarDecl) {
        continue;
      }
      auto& var_decl = static_cast<VarDeclStmt&>(*stmts[i]);
      if (var_decl.init() == nullptr) {
        continue;
      }
      const std::string& temp = var_decl.name();
      // Count reads across the remainder of the list; find the single read.
      size_t total_reads = 0;
      size_t read_index = 0;
      bool written = false;
      for (size_t j = i + 1; j < stmts.size(); ++j) {
        const size_t reads = CountReads(*stmts[j], temp);
        if (reads > 0 && total_reads == 0) {
          read_index = j;
        }
        total_reads += reads;
        if (stmts[j]->kind() == StmtKind::kAssign &&
            LValueRoot(static_cast<const AssignStmt&>(*stmts[j]).target()) == temp) {
          written = true;
        }
      }
      if (total_reads != 1 || written) {
        continue;
      }
      // The read must be directly in a substitutable position of a
      // top-level assignment/vardecl.
      Stmt& read_stmt = *stmts[read_index];
      ExprPtr* read_slot = nullptr;
      if (read_stmt.kind() == StmtKind::kAssign) {
        auto& assign = static_cast<AssignStmt&>(read_stmt);
        if (CountReads(read_stmt, temp) == 1 && ExprReadsVar(assign.value(), temp)) {
          read_slot = &assign.value_slot();
        }
      } else if (read_stmt.kind() == StmtKind::kVarDecl) {
        auto& decl = static_cast<VarDeclStmt&>(read_stmt);
        if (decl.init() != nullptr && ExprReadsVar(*decl.init(), temp)) {
          read_slot = &decl.init_slot();
        }
      }
      if (read_slot == nullptr) {
        continue;
      }
      // Safety: no intervening statement may clobber the temp's inputs.
      // The seeded fault skips this check, substituting stale expressions.
      if (!skip_write_check_) {
        std::set<std::string> inputs;
        CollectReadRoots(*var_decl.init(), inputs);
        bool clobbered = false;
        for (size_t j = i + 1; j < read_index; ++j) {
          if (StatementClobbers(*stmts[j], inputs)) {
            clobbered = true;
            break;
          }
        }
        if (clobbered) {
          continue;
        }
      }
      // Substitute and remove the declaration.
      class Substituter : public Rewriter {
       public:
        Substituter(const std::string& name, const Expr& replacement)
            : name_(name), replacement_(replacement) {}

       protected:
        ExprPtr PostPath(PathExpr& path) override {
          if (path.name() == name_) {
            return replacement_.Clone();
          }
          return nullptr;
        }
        bool RewritesLValues() const override { return false; }

       private:
        const std::string& name_;
        const Expr& replacement_;
      };
      Substituter substituter(temp, *var_decl.init());
      substituter.RewriteExpr(*read_slot);
      stmts[i] = std::make_unique<EmptyStmt>();
    }
    FlattenBlocks(block);
  }

  bool skip_write_check_ = false;
};

// ===========================================================================
// DeadCodeElimination
// ===========================================================================

class DeadCodeEliminationPass : public Pass {
 public:
  std::string name() const override { return "DeadCodeElimination"; }
  BugLocation location() const override { return BugLocation::kMidEnd; }

  void Run(Program& program, const BugConfig& bugs) override {
    exit_call_bug_ = bugs.Has(BugId::kDeadCodeAfterExitCall);
    for (const DeclPtr& decl : program.mutable_decls()) {
      if (decl->kind() == DeclKind::kControl) {
        auto& control = static_cast<ControlDecl&>(*decl);
        ProcessBlock(*control.mutable_apply());
        for (const DeclPtr& local : control.mutable_locals()) {
          if (local->kind() == DeclKind::kAction) {
            ProcessBlock(*static_cast<ActionDecl&>(*local).mutable_body());
          }
        }
      } else if (decl->kind() == DeclKind::kFunction) {
        ProcessBlock(*static_cast<FunctionDecl&>(*decl).mutable_body());
      }
    }
  }

 private:
  static bool EndsWithExit(const Stmt& stmt) {
    if (stmt.kind() == StmtKind::kExit) {
      return true;
    }
    if (stmt.kind() == StmtKind::kBlock) {
      const auto& block = static_cast<const BlockStmt&>(stmt);
      return !block.statements().empty() && EndsWithExit(*block.statements().back());
    }
    return false;
  }

  void ProcessBlock(BlockStmt& block) {
    std::vector<StmtPtr> out;
    bool dead = false;
    for (StmtPtr& stmt : block.mutable_statements()) {
      if (dead) {
        continue;  // unreachable
      }
      if (stmt->kind() == StmtKind::kBlock) {
        ProcessBlock(static_cast<BlockStmt&>(*stmt));
      } else if (stmt->kind() == StmtKind::kIf) {
        auto& if_stmt = static_cast<IfStmt&>(*stmt);
        if (if_stmt.then_slot()->kind() == StmtKind::kBlock) {
          ProcessBlock(static_cast<BlockStmt&>(*if_stmt.then_slot()));
        }
        if (if_stmt.else_slot() != nullptr &&
            if_stmt.else_slot()->kind() == StmtKind::kBlock) {
          ProcessBlock(static_cast<BlockStmt&>(*if_stmt.else_slot()));
        }
        // Constant conditions select a branch statically.
        if (if_stmt.cond().kind() == ExprKind::kBoolConst) {
          const bool value = static_cast<const BoolConstExpr&>(if_stmt.cond()).value();
          if (value) {
            out.push_back(std::move(if_stmt.then_slot()));
          } else if (if_stmt.else_slot() != nullptr) {
            out.push_back(std::move(if_stmt.else_slot()));
          }
          continue;
        }
        // Seeded fault: a branch that ends in `exit` is assumed to always
        // execute, so the remainder of this list is "unreachable".
        if (exit_call_bug_ && EndsWithExit(*if_stmt.then_slot())) {
          out.push_back(std::move(stmt));
          dead = true;
          continue;
        }
      } else if (stmt->kind() == StmtKind::kExit) {
        out.push_back(std::move(stmt));
        dead = true;
        continue;
      }
      out.push_back(std::move(stmt));
    }
    block.mutable_statements() = std::move(out);
    FlattenBlocks(block);
  }

  bool exit_call_bug_ = false;
};

// ===========================================================================
// EliminateSlices
// ===========================================================================

class EliminateSlicesPass : public Pass {
 public:
  std::string name() const override { return "EliminateSlices"; }
  BugLocation location() const override { return BugLocation::kMidEnd; }

  void Run(Program& program, const BugConfig& bugs) override {
    class SliceLowerer : public Rewriter {
     public:
      explicit SliceLowerer(bool wrong_mask) : wrong_mask_(wrong_mask) {}

     protected:
      StmtPtr PostAssign(AssignStmt& assign) override {
        if (assign.target().kind() != ExprKind::kSlice) {
          return nullptr;
        }
        auto& slice = static_cast<SliceExpr&>(*assign.target_slot());
        const Expr& base = slice.base();
        GAUNTLET_BUG_CHECK(base.type() != nullptr && base.type()->IsBit(),
                           "EliminateSlices requires typed trees");
        const uint32_t width = base.type()->width();
        const uint32_t hi = slice.hi();
        const uint32_t lo = slice.lo();
        // Seeded fault: the field mask is one bit short.
        const uint32_t field_bits = hi - lo + (wrong_mask_ ? 0 : 1);
        const uint64_t field_mask =
            field_bits == 0 ? 0 : (BitValue::MaskFor(field_bits) << lo);
        const uint64_t keep_mask = ~field_mask & BitValue::MaskFor(width);
        // base = (base & keep) | ((bit<w>) value << lo)
        ExprPtr kept = MakeBinary(BinaryOp::kBitAnd, base.Clone(),
                                  std::make_unique<ConstantExpr>(BitValue(width, keep_mask)));
        ExprPtr widened = std::make_unique<CastExpr>(Type::Bit(width),
                                                     std::move(assign.value_slot()));
        if (lo > 0) {
          widened = MakeBinary(BinaryOp::kShl, std::move(widened),
                               std::make_unique<ConstantExpr>(BitValue(width, lo)));
        }
        ExprPtr combined = MakeBinary(BinaryOp::kBitOr, std::move(kept), std::move(widened));
        return std::make_unique<AssignStmt>(base.Clone(), std::move(combined));
      }

     private:
      bool wrong_mask_;
    };
    SliceLowerer lowerer(bugs.Has(BugId::kEliminateSlicesWrongMask));
    lowerer.RewriteProgram(program);
  }
};

}  // namespace

std::unique_ptr<Pass> MakePredicationPass() { return std::make_unique<PredicationPass>(); }
std::unique_ptr<Pass> MakeCopyPropagationPass() {
  return std::make_unique<CopyPropagationPass>();
}
std::unique_ptr<Pass> MakeLocalCopyEliminationPass() {
  return std::make_unique<LocalCopyEliminationPass>();
}
std::unique_ptr<Pass> MakeDeadCodeEliminationPass() {
  return std::make_unique<DeadCodeEliminationPass>();
}
std::unique_ptr<Pass> MakeEliminateSlicesPass() {
  return std::make_unique<EliminateSlicesPass>();
}

}  // namespace gauntlet
