#include <set>

#include "src/ast/visitor.h"
#include "src/frontend/printer.h"
#include "src/passes/frontend_passes.h"
#include "src/passes/midend_passes.h"
#include "src/passes/pass.h"
#include "src/typecheck/typecheck.h"

namespace gauntlet {

void PassManager::Run(Program& program, const BugConfig& bugs,
                      const PassSnapshotFn& snapshot) const {
  uint64_t last_hash = HashProgram(program);
  for (const std::unique_ptr<Pass>& pass : passes_) {
    pass->Run(program, bugs);
    // Re-type-check: a failure here means the previous pass broke the
    // program — p4c's "snowball" crash class. Convert orderly rejections
    // into compiler bugs, because the *input* program was valid.
    try {
      TypeCheck(program);
    } catch (const CompileError& error) {
      throw CompilerBugError("pass " + pass->name() +
                             " produced an ill-typed program: " + error.what());
    }
    if (snapshot != nullptr) {
      const uint64_t hash = HashProgram(program);
      if (hash != last_hash) {
        // Only surface passes that actually changed the program, mirroring
        // the paper's hash filter (§5.2).
        snapshot(pass->name(), program);
        last_hash = hash;
      }
    }
  }
}

PassManager PassManager::StandardPipeline() {
  // Front end first: def-use simplification runs *before* inlining (as in
  // p4c), which is what exposes it to call-argument liveness — the Fig. 5a
  // bug class lives exactly there.
  PassManager manager;
  manager.Add(MakeSideEffectOrderingPass());
  manager.Add(MakeUniqueNamesPass());
  manager.Add(MakeSimplifyDefUsePass());
  manager.Add(MakeInlineFunctionsPass());
  manager.Add(MakeRemoveActionParametersPass());
  manager.Add(MakeConstantFoldingPass());
  manager.Add(MakeStrengthReductionPass());
  manager.Add(MakePredicationPass());
  manager.Add(MakeCopyPropagationPass());
  manager.Add(MakeLocalCopyEliminationPass());
  manager.Add(MakeDeadCodeEliminationPass());
  manager.Add(MakeEliminateSlicesPass());
  return manager;
}

NameAllocator::NameAllocator(const Program& program) {
  // Collect every identifier that appears anywhere (declarations are
  // enough: references must resolve to declarations).
  class Collector : public Inspector {
   public:
    explicit Collector(std::set<std::string>& used) : used_(used) {}

   protected:
    void OnControl(const ControlDecl& control) override {
      used_.insert(control.name());
      for (const Param& param : control.params()) {
        used_.insert(param.name);
      }
    }
    void OnParser(const ParserDecl& parser) override {
      used_.insert(parser.name());
      for (const Param& param : parser.params()) {
        used_.insert(param.name);
      }
    }
    void OnAction(const ActionDecl& action) override {
      used_.insert(action.name());
      for (const Param& param : action.params()) {
        used_.insert(param.name);
      }
    }
    void OnFunction(const FunctionDecl& function) override {
      used_.insert(function.name());
      for (const Param& param : function.params()) {
        used_.insert(param.name);
      }
    }
    void OnTable(const TableDecl& table) override { used_.insert(table.name()); }
    void OnStmt(const Stmt& stmt) override {
      if (stmt.kind() == StmtKind::kVarDecl) {
        used_.insert(static_cast<const VarDeclStmt&>(stmt).name());
      }
    }

   private:
    std::set<std::string>& used_;
  };
  Collector collector(used_);
  collector.VisitProgram(program);
}

std::string NameAllocator::Fresh(const std::string& hint) {
  for (;;) {
    std::string candidate = hint + "_" + std::to_string(counter_++);
    if (used_.insert(candidate).second) {
      return candidate;
    }
  }
}

bool ContainsReturn(const Stmt& stmt) {
  class Finder : public Inspector {
   public:
    bool found = false;

   protected:
    void OnStmt(const Stmt& stmt) override { found |= stmt.kind() == StmtKind::kReturn; }
  };
  Finder finder;
  finder.VisitStmt(stmt);
  return finder.found;
}

bool ContainsExit(const Stmt& stmt) {
  class Finder : public Inspector {
   public:
    bool found = false;

   protected:
    void OnStmt(const Stmt& stmt) override { found |= stmt.kind() == StmtKind::kExit; }
  };
  Finder finder;
  finder.VisitStmt(stmt);
  return finder.found;
}

bool ContainsFunctionCall(const Expr& expr) {
  class Finder : public Inspector {
   public:
    bool found = false;

   protected:
    void OnExpr(const Expr& expr) override {
      if (expr.kind() == ExprKind::kCall) {
        const auto& call = static_cast<const CallExpr&>(expr);
        found |= call.call_kind() == CallKind::kFunction;
      }
    }
  };
  Finder finder;
  finder.VisitExpr(expr);
  return finder.found;
}

bool ExprReadsVar(const Expr& expr, const std::string& name) {
  class Finder : public Inspector {
   public:
    explicit Finder(const std::string& name) : name_(name) {}
    bool found = false;

   protected:
    void OnExpr(const Expr& expr) override {
      if (expr.kind() == ExprKind::kPath) {
        found |= static_cast<const PathExpr&>(expr).name() == name_;
      }
    }

   private:
    const std::string& name_;
  };
  Finder finder(name);
  finder.VisitExpr(expr);
  return finder.found;
}

std::string LValueRoot(const Expr& expr) {
  const Expr* current = &expr;
  for (;;) {
    switch (current->kind()) {
      case ExprKind::kPath:
        return static_cast<const PathExpr&>(*current).name();
      case ExprKind::kMember:
        current = &static_cast<const MemberExpr&>(*current).base();
        break;
      case ExprKind::kSlice:
        current = &static_cast<const SliceExpr&>(*current).base();
        break;
      default:
        GAUNTLET_BUG_CHECK(false, "LValueRoot on non-l-value");
    }
  }
}

}  // namespace gauntlet
