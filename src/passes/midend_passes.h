#ifndef SRC_PASSES_MIDEND_PASSES_H_
#define SRC_PASSES_MIDEND_PASSES_H_

#include <memory>

#include "src/passes/pass.h"

namespace gauntlet {

// Converts branches inside action bodies into predicated (mux) assignments,
// as required by branch-free match-action hardware. Seeded fault
// kPredicationLostElse silently drops the else-branch writes (the
// Predication regression stream the paper caught after a p4c merge, §7.2).
std::unique_ptr<Pass> MakePredicationPass();

// Forward-propagates copies within basic blocks. Seeded fault
// kInvalidHeaderCopyProp keeps propagating header-field copies across
// setValid/setInvalid, whose field-scrambling semantics make the cached
// value stale (Fig. 5e).
std::unique_ptr<Pass> MakeCopyPropagationPass();

// Substitutes single-use temporaries into their use site. Seeded fault
// kTempSubstAcrossWrite skips the intervening-write check.
std::unique_ptr<Pass> MakeLocalCopyEliminationPass();

// Removes unreachable and no-op code (constant branches, statements after
// exit, empty branches). Seeded fault kDeadCodeAfterExitCall assumes any
// if-branch ending in `exit` always exits, deleting live trailing code.
std::unique_ptr<Pass> MakeDeadCodeEliminationPass();

// Lowers slice assignments x[h:l] = v into mask-and-shift whole-variable
// assignments (back ends without field-slice write support need this).
// Seeded fault kEliminateSlicesWrongMask computes an off-by-one mask.
std::unique_ptr<Pass> MakeEliminateSlicesPass();

}  // namespace gauntlet

#endif  // SRC_PASSES_MIDEND_PASSES_H_
