#include "src/passes/frontend_passes.h"

#include <map>
#include <set>

#include "src/ast/visitor.h"
#include "src/typecheck/typecheck.h"

namespace gauntlet {

namespace {

// Applies `fn` to every statement body in the program (function bodies,
// action bodies, control apply blocks). Parser states hold only extract
// calls and simple assignments in this subset and are left untouched by
// statement-restructuring passes, mirroring how p4c's mid end treats them.
void ForEachBody(Program& program, const std::function<void(BlockStmt&)>& fn) {
  for (const DeclPtr& decl : program.mutable_decls()) {
    switch (decl->kind()) {
      case DeclKind::kFunction:
        fn(*static_cast<FunctionDecl&>(*decl).mutable_body());
        break;
      case DeclKind::kControl: {
        auto& control = static_cast<ControlDecl&>(*decl);
        for (const DeclPtr& local : control.mutable_locals()) {
          if (local->kind() == DeclKind::kAction) {
            fn(*static_cast<ActionDecl&>(*local).mutable_body());
          }
        }
        fn(*control.mutable_apply());
        break;
      }
      default:
        break;
    }
  }
}

// Renames variables according to a map: both declarations and references.
class RenameRewriter : public Rewriter {
 public:
  explicit RenameRewriter(std::map<std::string, std::string> renames)
      : renames_(std::move(renames)) {}

 protected:
  ExprPtr PostPath(PathExpr& path) override {
    auto it = renames_.find(path.name());
    if (it != renames_.end()) {
      path.set_name(it->second);
    }
    return nullptr;
  }
  StmtPtr PostVarDecl(VarDeclStmt& var_decl) override {
    auto it = renames_.find(var_decl.name());
    if (it != renames_.end()) {
      var_decl.set_name(it->second);
    }
    return nullptr;
  }

 private:
  std::map<std::string, std::string> renames_;
};

// Ensures a statement is a block (wrapping single statements).
std::unique_ptr<BlockStmt> AsBlock(StmtPtr stmt) {
  if (stmt->kind() == StmtKind::kBlock) {
    return std::unique_ptr<BlockStmt>(static_cast<BlockStmt*>(stmt.release()));
  }
  auto block = std::make_unique<BlockStmt>();
  block->Append(std::move(stmt));
  return block;
}

// ===========================================================================
// SideEffectOrdering
// ===========================================================================

class SideEffectOrderingPass : public Pass {
 public:
  std::string name() const override { return "SideEffectOrdering"; }
  BugLocation location() const override { return BugLocation::kFrontEnd; }

  void Run(Program& program, const BugConfig& bugs) override {
    NameAllocator names(program);
    const bool swap = bugs.Has(BugId::kSideEffectOrderSwap);
    ForEachBody(program, [&](BlockStmt& body) { ProcessBlock(body, names, swap); });
  }

 private:
  void ProcessBlock(BlockStmt& block, NameAllocator& names, bool swap) {
    std::vector<StmtPtr> out;
    for (StmtPtr& stmt : block.mutable_statements()) {
      std::vector<StmtPtr> hoisted;
      switch (stmt->kind()) {
        case StmtKind::kBlock:
          ProcessBlock(static_cast<BlockStmt&>(*stmt), names, swap);
          break;
        case StmtKind::kIf: {
          auto& if_stmt = static_cast<IfStmt&>(*stmt);
          Hoist(if_stmt.cond_slot(), hoisted, names, /*keep_top=*/false, swap);
          if_stmt.then_slot() = AsBlock(std::move(if_stmt.then_slot()));
          ProcessBlock(static_cast<BlockStmt&>(*if_stmt.then_slot()), names, swap);
          if (if_stmt.else_slot() != nullptr) {
            if_stmt.else_slot() = AsBlock(std::move(if_stmt.else_slot()));
            ProcessBlock(static_cast<BlockStmt&>(*if_stmt.else_slot()), names, swap);
          }
          break;
        }
        case StmtKind::kAssign: {
          auto& assign = static_cast<AssignStmt&>(*stmt);
          // The RHS may stay a bare call (`x = f(..)` is an inliner shape);
          // its arguments are still scanned.
          Hoist(assign.value_slot(), hoisted, names, /*keep_top=*/true, swap);
          break;
        }
        case StmtKind::kVarDecl: {
          auto& var_decl = static_cast<VarDeclStmt&>(*stmt);
          if (var_decl.init() != nullptr) {
            Hoist(var_decl.init_slot(), hoisted, names, /*keep_top=*/true, swap);
          }
          break;
        }
        case StmtKind::kCall: {
          auto& call_stmt = static_cast<CallStmt&>(*stmt);
          auto& call = call_stmt.mutable_call();
          for (ExprPtr& arg : call.mutable_args()) {
            Hoist(arg, hoisted, names, /*keep_top=*/false, swap);
          }
          break;
        }
        case StmtKind::kReturn: {
          auto& return_stmt = static_cast<ReturnStmt&>(*stmt);
          if (return_stmt.value() != nullptr) {
            Hoist(return_stmt.value_slot(), hoisted, names, /*keep_top=*/false, swap);
          }
          break;
        }
        default:
          break;
      }
      for (StmtPtr& hoisted_stmt : hoisted) {
        out.push_back(std::move(hoisted_stmt));
      }
      out.push_back(std::move(stmt));
    }
    block.mutable_statements() = std::move(out);
  }

  // Hoists function calls out of `slot` into `out`, recursing depth-first.
  // `keep_top` leaves the expression in place if it is itself a call (the
  // shapes the inliner consumes directly). With the seeded swap fault,
  // sibling hoist groups are emitted in reverse order — dependencies within
  // a group stay intact, so the program remains well-typed but evaluates
  // side effects in the wrong order.
  void Hoist(ExprPtr& slot, std::vector<StmtPtr>& out, NameAllocator& names, bool keep_top,
             bool swap) {
    std::vector<std::vector<StmtPtr>> groups;
    HoistChildren(*slot, groups, names, swap);
    if (!keep_top && slot->kind() == ExprKind::kCall &&
        static_cast<CallExpr&>(*slot).call_kind() == CallKind::kFunction) {
      std::vector<StmtPtr> own;
      ReplaceWithTemp(slot, own, names);
      groups.push_back(std::move(own));
    }
    EmitGroups(groups, out, swap);
  }

  void HoistChildren(Expr& expr, std::vector<std::vector<StmtPtr>>& groups,
                     NameAllocator& names, bool swap) {
    auto hoist_child = [&](ExprPtr& child) {
      std::vector<StmtPtr> group;
      std::vector<std::vector<StmtPtr>> child_groups;
      HoistChildren(*child, child_groups, names, swap);
      EmitGroups(child_groups, group, swap);
      if (child->kind() == ExprKind::kCall &&
          static_cast<CallExpr&>(*child).call_kind() == CallKind::kFunction) {
        ReplaceWithTemp(child, group, names);
      }
      if (!group.empty()) {
        groups.push_back(std::move(group));
      }
    };
    switch (expr.kind()) {
      case ExprKind::kMember:
        hoist_child(static_cast<MemberExpr&>(expr).base_slot());
        break;
      case ExprKind::kSlice:
        hoist_child(static_cast<SliceExpr&>(expr).base_slot());
        break;
      case ExprKind::kUnary:
        hoist_child(static_cast<UnaryExpr&>(expr).operand_slot());
        break;
      case ExprKind::kBinary: {
        auto& binary = static_cast<BinaryExpr&>(expr);
        hoist_child(binary.left_slot());
        hoist_child(binary.right_slot());
        break;
      }
      case ExprKind::kMux: {
        auto& mux = static_cast<MuxExpr&>(expr);
        hoist_child(mux.cond_slot());
        hoist_child(mux.then_slot());
        hoist_child(mux.else_slot());
        break;
      }
      case ExprKind::kCast:
        hoist_child(static_cast<CastExpr&>(expr).operand_slot());
        break;
      case ExprKind::kCall: {
        auto& call = static_cast<CallExpr&>(expr);
        for (ExprPtr& arg : call.mutable_args()) {
          hoist_child(arg);
        }
        break;
      }
      default:
        break;
    }
  }

  void EmitGroups(std::vector<std::vector<StmtPtr>>& groups, std::vector<StmtPtr>& out,
                  bool swap) {
    if (swap) {
      for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
        for (StmtPtr& stmt : *it) {
          out.push_back(std::move(stmt));
        }
      }
      return;
    }
    for (auto& group : groups) {
      for (StmtPtr& stmt : group) {
        out.push_back(std::move(stmt));
      }
    }
  }

  void ReplaceWithTemp(ExprPtr& slot, std::vector<StmtPtr>& out, NameAllocator& names) {
    GAUNTLET_BUG_CHECK(slot->type() != nullptr, "SideEffectOrdering requires typed trees");
    const std::string temp = names.Fresh("seo_tmp");
    auto decl = std::make_unique<VarDeclStmt>(temp, slot->type(), std::move(slot));
    out.push_back(std::move(decl));
    slot = MakePath(temp);
  }
};

// ===========================================================================
// Return lowering shared by the two inliners
// ===========================================================================

// Rewrites `return [e]` into `[ret = e;] done = true;` and guards trailing
// statements with `if (!done)`. Returns true if the list can still fall
// through (used only for recursion).
void LowerReturns(BlockStmt& block, const std::string& done_var, const std::string& ret_var) {
  std::vector<StmtPtr>& stmts = block.mutable_statements();
  for (size_t i = 0; i < stmts.size(); ++i) {
    Stmt& stmt = *stmts[i];
    bool may_return = false;
    if (stmt.kind() == StmtKind::kReturn) {
      auto& return_stmt = static_cast<ReturnStmt&>(stmt);
      auto replacement = std::make_unique<BlockStmt>();
      if (return_stmt.value() != nullptr) {
        replacement->Append(std::make_unique<AssignStmt>(MakePath(ret_var),
                                                         std::move(return_stmt.value_slot())));
      }
      replacement->Append(std::make_unique<AssignStmt>(MakePath(done_var), MakeBool(true)));
      stmts[i] = std::move(replacement);
      may_return = true;
    } else if (stmt.kind() == StmtKind::kIf) {
      auto& if_stmt = static_cast<IfStmt&>(stmt);
      may_return = ContainsReturn(stmt);
      if (may_return) {
        if_stmt.then_slot() = AsBlock(std::move(if_stmt.then_slot()));
        LowerReturns(static_cast<BlockStmt&>(*if_stmt.then_slot()), done_var, ret_var);
        if (if_stmt.else_slot() != nullptr) {
          if_stmt.else_slot() = AsBlock(std::move(if_stmt.else_slot()));
          LowerReturns(static_cast<BlockStmt&>(*if_stmt.else_slot()), done_var, ret_var);
        }
      }
    } else if (stmt.kind() == StmtKind::kBlock) {
      may_return = ContainsReturn(stmt);
      if (may_return) {
        LowerReturns(static_cast<BlockStmt&>(stmt), done_var, ret_var);
      }
    }
    if (may_return && i + 1 < stmts.size()) {
      // Guard the remainder of the list (and lower its returns too).
      auto rest = std::make_unique<BlockStmt>();
      for (size_t j = i + 1; j < stmts.size(); ++j) {
        rest->Append(std::move(stmts[j]));
      }
      LowerReturns(*rest, done_var, ret_var);
      stmts.resize(i + 1);
      stmts.push_back(std::make_unique<IfStmt>(
          MakeUnary(UnaryOp::kLogicalNot, MakePath(done_var)), std::move(rest), nullptr));
      return;
    }
  }
}

// ===========================================================================
// InlineFunctions
// ===========================================================================

class InlineFunctionsPass : public Pass {
 public:
  std::string name() const override { return "InlineFunctions"; }
  BugLocation location() const override { return BugLocation::kFrontEnd; }

  void Run(Program& program, const BugConfig& bugs) override {
    const bool skip_nested = bugs.Has(BugId::kInlinerSkipsNestedCall);
    NameAllocator names(program);
    // Iterate: inlined bodies may themselves contain calls to earlier
    // functions.
    for (int round = 0; round < 16; ++round) {
      bool changed = false;
      ForEachBody(program, [&](BlockStmt& body) {
        changed |= ProcessBlock(body, program, names, skip_nested, /*depth=*/0);
      });
      if (!changed) {
        break;
      }
    }
    // Drop function declarations once no calls remain anywhere.
    if (!AnyFunctionCall(program)) {
      auto& decls = program.mutable_decls();
      std::vector<DeclPtr> kept;
      for (DeclPtr& decl : decls) {
        if (decl->kind() != DeclKind::kFunction) {
          kept.push_back(std::move(decl));
        }
      }
      decls = std::move(kept);
    }
  }

 private:
  static bool AnyFunctionCall(Program& program) {
    class Finder : public Inspector {
     public:
      bool found = false;

     protected:
      void OnExpr(const Expr& expr) override {
        if (expr.kind() == ExprKind::kCall &&
            static_cast<const CallExpr&>(expr).call_kind() == CallKind::kFunction) {
          found = true;
        }
      }
    };
    Finder finder;
    finder.VisitProgram(program);
    return finder.found;
  }

  bool ProcessBlock(BlockStmt& block, Program& program, NameAllocator& names, bool skip_nested,
                    int depth) {
    bool changed = false;
    std::vector<StmtPtr> out;
    for (StmtPtr& stmt : block.mutable_statements()) {
      if (stmt->kind() == StmtKind::kBlock) {
        changed |=
            ProcessBlock(static_cast<BlockStmt&>(*stmt), program, names, skip_nested, depth);
        out.push_back(std::move(stmt));
        continue;
      }
      if (stmt->kind() == StmtKind::kIf) {
        auto& if_stmt = static_cast<IfStmt&>(*stmt);
        if_stmt.then_slot() = AsBlock(std::move(if_stmt.then_slot()));
        changed |= ProcessBlock(static_cast<BlockStmt&>(*if_stmt.then_slot()), program, names,
                                skip_nested, depth + 1);
        if (if_stmt.else_slot() != nullptr) {
          if_stmt.else_slot() = AsBlock(std::move(if_stmt.else_slot()));
          changed |= ProcessBlock(static_cast<BlockStmt&>(*if_stmt.else_slot()), program, names,
                                  skip_nested, depth + 1);
        }
        out.push_back(std::move(stmt));
        continue;
      }
      // The three shapes SideEffectOrdering guarantees: x = f(..);
      // T v = f(..); f(..);
      const CallExpr* call = nullptr;
      if (stmt->kind() == StmtKind::kAssign) {
        const auto& assign = static_cast<const AssignStmt&>(*stmt);
        if (assign.value().kind() == ExprKind::kCall) {
          const auto& candidate = static_cast<const CallExpr&>(assign.value());
          if (candidate.call_kind() == CallKind::kFunction) {
            call = &candidate;
          }
        }
      } else if (stmt->kind() == StmtKind::kVarDecl) {
        const auto& var_decl = static_cast<const VarDeclStmt&>(*stmt);
        if (var_decl.init() != nullptr && var_decl.init()->kind() == ExprKind::kCall) {
          const auto& candidate = static_cast<const CallExpr&>(*var_decl.init());
          if (candidate.call_kind() == CallKind::kFunction) {
            call = &candidate;
          }
        }
      } else if (stmt->kind() == StmtKind::kCall) {
        const auto& candidate = static_cast<const CallStmt&>(*stmt).call();
        if (candidate.call_kind() == CallKind::kFunction) {
          call = &candidate;
        }
      }
      if (call == nullptr || (skip_nested && depth > 0)) {
        // Seeded fault: calls nested inside if-branches are silently left
        // uninlined; the back end later asserts on them.
        out.push_back(std::move(stmt));
        continue;
      }
      const FunctionDecl* function = program.FindFunction(call->callee());
      GAUNTLET_BUG_CHECK(function != nullptr, "inliner: unknown function");
      StmtPtr expansion = InlineCall(*function, *call, *stmt, names);
      out.push_back(std::move(expansion));
      changed = true;
    }
    block.mutable_statements() = std::move(out);
    FlattenBlocks(block);
    return changed;
  }

  StmtPtr InlineCall(const FunctionDecl& function, const CallExpr& call, const Stmt& site,
                     NameAllocator& names) {
    auto expansion = std::make_unique<BlockStmt>();
    std::map<std::string, std::string> renames;
    // Copy-in.
    struct WriteBack {
      ExprPtr lvalue;
      std::string temp;
    };
    std::vector<WriteBack> write_backs;
    for (size_t i = 0; i < function.params().size(); ++i) {
      const Param& param = function.params()[i];
      const std::string temp = names.Fresh(function.name() + "_" + param.name);
      renames[param.name] = temp;
      if (param.direction == Direction::kOut) {
        expansion->Append(std::make_unique<VarDeclStmt>(temp, param.type, nullptr));
      } else {
        expansion->Append(
            std::make_unique<VarDeclStmt>(temp, param.type, call.args()[i]->Clone()));
      }
      if (param.direction == Direction::kInOut || param.direction == Direction::kOut) {
        write_backs.push_back(WriteBack{call.args()[i]->Clone(), temp});
      }
    }
    // Rename body locals to fresh names.
    auto body_stmt = StmtPtr(function.body().Clone());
    auto body = std::unique_ptr<BlockStmt>(static_cast<BlockStmt*>(body_stmt.release()));
    class LocalCollector : public Inspector {
     public:
      std::vector<std::string> locals;

     protected:
      void OnStmt(const Stmt& stmt) override {
        if (stmt.kind() == StmtKind::kVarDecl) {
          locals.push_back(static_cast<const VarDeclStmt&>(stmt).name());
        }
      }
    };
    LocalCollector collector;
    collector.VisitStmt(*body);
    for (const std::string& local : collector.locals) {
      renames[local] = names.Fresh(function.name() + "_" + local);
    }
    RenameRewriter renamer(renames);
    StmtPtr body_slot = std::move(body);
    renamer.RewriteStmt(body_slot);
    body = AsBlock(std::move(body_slot));

    // Return lowering.
    const bool has_return = ContainsReturn(*body);
    std::string ret_var;
    std::string done_var;
    if (!function.return_type()->IsVoid()) {
      ret_var = names.Fresh(function.name() + "_ret");
      expansion->Append(std::make_unique<VarDeclStmt>(ret_var, function.return_type(), nullptr));
    }
    if (has_return) {
      done_var = names.Fresh(function.name() + "_done");
      expansion->Append(std::make_unique<VarDeclStmt>(done_var, Type::Bool(), MakeBool(false)));
      LowerReturns(*body, done_var, ret_var);
    }
    expansion->Append(std::move(body));
    // Copy-out.
    for (WriteBack& write_back : write_backs) {
      expansion->Append(
          std::make_unique<AssignStmt>(std::move(write_back.lvalue), MakePath(write_back.temp)));
    }
    // Result use.
    if (site.kind() == StmtKind::kAssign) {
      expansion->Append(std::make_unique<AssignStmt>(
          static_cast<const AssignStmt&>(site).target().Clone(), MakePath(ret_var)));
    } else if (site.kind() == StmtKind::kVarDecl) {
      const auto& var_decl = static_cast<const VarDeclStmt&>(site);
      expansion->Append(
          std::make_unique<VarDeclStmt>(var_decl.name(), var_decl.var_type(), MakePath(ret_var)));
    }
    return expansion;
  }
};

// ===========================================================================
// RemoveActionParameters (direct-action-call inlining, Fig. 5f home)
// ===========================================================================

class RemoveActionParametersPass : public Pass {
 public:
  std::string name() const override { return "RemoveActionParameters"; }
  BugLocation location() const override { return BugLocation::kFrontEnd; }

  void Run(Program& program, const BugConfig& bugs) override {
    const bool exit_bug = bugs.Has(BugId::kExitIgnoresCopyOut);
    NameAllocator names(program);
    for (const DeclPtr& decl : program.mutable_decls()) {
      if (decl->kind() != DeclKind::kControl) {
        continue;
      }
      auto& control = static_cast<ControlDecl&>(*decl);
      for (int round = 0; round < 16; ++round) {
        bool changed = false;
        // Direct calls can occur in the apply block and in other actions.
        for (const DeclPtr& local : control.mutable_locals()) {
          if (local->kind() == DeclKind::kAction) {
            changed |= ProcessBlock(*static_cast<ActionDecl&>(*local).mutable_body(), control,
                                    names, exit_bug);
          }
        }
        changed |= ProcessBlock(*control.mutable_apply(), control, names, exit_bug);
        if (!changed) {
          break;
        }
      }
      RemoveDeadDirectActions(control);
    }
  }

 private:
  bool ProcessBlock(BlockStmt& block, ControlDecl& control, NameAllocator& names,
                    bool exit_bug) {
    bool changed = false;
    std::vector<StmtPtr> out;
    for (StmtPtr& stmt : block.mutable_statements()) {
      if (stmt->kind() == StmtKind::kBlock) {
        changed |= ProcessBlock(static_cast<BlockStmt&>(*stmt), control, names, exit_bug);
        out.push_back(std::move(stmt));
        continue;
      }
      if (stmt->kind() == StmtKind::kIf) {
        auto& if_stmt = static_cast<IfStmt&>(*stmt);
        if_stmt.then_slot() = AsBlock(std::move(if_stmt.then_slot()));
        changed |=
            ProcessBlock(static_cast<BlockStmt&>(*if_stmt.then_slot()), control, names, exit_bug);
        if (if_stmt.else_slot() != nullptr) {
          if_stmt.else_slot() = AsBlock(std::move(if_stmt.else_slot()));
          changed |= ProcessBlock(static_cast<BlockStmt&>(*if_stmt.else_slot()), control, names,
                                  exit_bug);
        }
        out.push_back(std::move(stmt));
        continue;
      }
      if (stmt->kind() != StmtKind::kCall ||
          static_cast<const CallStmt&>(*stmt).call().call_kind() != CallKind::kAction) {
        out.push_back(std::move(stmt));
        continue;
      }
      const auto& call = static_cast<const CallStmt&>(*stmt).call();
      const Decl* local = control.FindLocal(call.callee());
      GAUNTLET_BUG_CHECK(local != nullptr && local->kind() == DeclKind::kAction,
                         "RemoveActionParameters: unknown action");
      const auto& action = static_cast<const ActionDecl&>(*local);
      if (action.params().empty()) {
        out.push_back(std::move(stmt));  // parameterless actions stay as calls
        continue;
      }
      out.push_back(InlineActionCall(action, call, names, exit_bug));
      changed = true;
    }
    block.mutable_statements() = std::move(out);
    FlattenBlocks(block);
    return changed;
  }

  StmtPtr InlineActionCall(const ActionDecl& action, const CallExpr& call, NameAllocator& names,
                           bool exit_bug) {
    auto expansion = std::make_unique<BlockStmt>();
    std::map<std::string, std::string> renames;
    struct WriteBack {
      ExprPtr lvalue;
      std::string temp;
    };
    std::vector<WriteBack> write_backs;
    for (size_t i = 0; i < action.params().size(); ++i) {
      const Param& param = action.params()[i];
      const std::string temp = names.Fresh(action.name() + "_" + param.name);
      renames[param.name] = temp;
      if (param.direction == Direction::kOut) {
        expansion->Append(std::make_unique<VarDeclStmt>(temp, param.type, nullptr));
      } else {
        expansion->Append(
            std::make_unique<VarDeclStmt>(temp, param.type, call.args()[i]->Clone()));
      }
      if (param.direction == Direction::kInOut || param.direction == Direction::kOut) {
        write_backs.push_back(WriteBack{call.args()[i]->Clone(), temp});
      }
    }
    auto body_stmt = StmtPtr(action.body().Clone());
    auto body = AsBlock(std::move(body_stmt));
    class LocalCollector : public Inspector {
     public:
      std::vector<std::string> locals;

     protected:
      void OnStmt(const Stmt& stmt) override {
        if (stmt.kind() == StmtKind::kVarDecl) {
          locals.push_back(static_cast<const VarDeclStmt&>(stmt).name());
        }
      }
    };
    LocalCollector collector;
    collector.VisitStmt(*body);
    for (const std::string& local : collector.locals) {
      renames[local] = names.Fresh(action.name() + "_" + local);
    }
    RenameRewriter renamer(renames);
    StmtPtr body_slot = std::move(body);
    renamer.RewriteStmt(body_slot);
    body = AsBlock(std::move(body_slot));

    if (ContainsReturn(*body)) {
      const std::string done_var = names.Fresh(action.name() + "_done");
      expansion->Append(std::make_unique<VarDeclStmt>(done_var, Type::Bool(), MakeBool(false)));
      LowerReturns(*body, done_var, "");
    }
    // Copy-out must also happen on the exit path (the specification
    // interpretation of Fig. 5f). The correct transformation duplicates the
    // copy-out assignments in front of every inlined `exit`; the seeded
    // fault leaves exits untouched, so copy-out is skipped when the action
    // exits — exactly the RemoveActionParameters bug the paper reports.
    if (!exit_bug && ContainsExit(*body)) {
      InsertCopyOutBeforeExits(*body, write_backs);
    }
    expansion->Append(std::move(body));
    for (WriteBack& write_back : write_backs) {
      expansion->Append(
          std::make_unique<AssignStmt>(std::move(write_back.lvalue), MakePath(write_back.temp)));
    }
    return expansion;
  }

  template <typename WriteBackVec>
  void InsertCopyOutBeforeExits(BlockStmt& block, const WriteBackVec& write_backs) {
    for (StmtPtr& stmt : block.mutable_statements()) {
      if (stmt->kind() == StmtKind::kExit) {
        auto replacement = std::make_unique<BlockStmt>();
        for (const auto& write_back : write_backs) {
          replacement->Append(std::make_unique<AssignStmt>(write_back.lvalue->Clone(),
                                                           MakePath(write_back.temp)));
        }
        replacement->Append(std::make_unique<ExitStmt>());
        stmt = std::move(replacement);
      } else if (stmt->kind() == StmtKind::kBlock) {
        InsertCopyOutBeforeExits(static_cast<BlockStmt&>(*stmt), write_backs);
      } else if (stmt->kind() == StmtKind::kIf) {
        auto& if_stmt = static_cast<IfStmt&>(*stmt);
        if (ContainsExit(*if_stmt.then_slot())) {
          if_stmt.then_slot() = AsBlock(std::move(if_stmt.then_slot()));
          InsertCopyOutBeforeExits(static_cast<BlockStmt&>(*if_stmt.then_slot()), write_backs);
        }
        if (if_stmt.else_slot() != nullptr && ContainsExit(*if_stmt.else_slot())) {
          if_stmt.else_slot() = AsBlock(std::move(if_stmt.else_slot()));
          InsertCopyOutBeforeExits(static_cast<BlockStmt&>(*if_stmt.else_slot()), write_backs);
        }
      }
    }
  }

  void RemoveDeadDirectActions(ControlDecl& control) {
    // Actions with directional parameters were all inlined (unless the
    // seeded fault skipped a site); remove the ones that are no longer
    // referenced by any call or table.
    class CallCollector : public Inspector {
     public:
      std::set<std::string> called;

     protected:
      void OnExpr(const Expr& expr) override {
        if (expr.kind() == ExprKind::kCall) {
          const auto& call = static_cast<const CallExpr&>(expr);
          if (call.call_kind() == CallKind::kAction) {
            called.insert(call.callee());
          }
        }
      }
    };
    CallCollector collector;
    collector.VisitDecl(control);
    std::set<std::string> table_actions;
    for (const DeclPtr& local : control.locals()) {
      if (local->kind() == DeclKind::kTable) {
        const auto& table = static_cast<const TableDecl&>(*local);
        for (const std::string& action : table.actions()) {
          table_actions.insert(action);
        }
        table_actions.insert(table.default_action());
      }
    }
    std::vector<DeclPtr> kept;
    for (DeclPtr& local : control.mutable_locals()) {
      if (local->kind() == DeclKind::kAction) {
        const auto& action = static_cast<const ActionDecl&>(*local);
        const bool directional =
            !action.params().empty() && action.params()[0].direction != Direction::kNone;
        if (directional && collector.called.count(action.name()) == 0 &&
            table_actions.count(action.name()) == 0) {
          continue;  // dead after inlining
        }
      }
      kept.push_back(std::move(local));
    }
    control.mutable_locals() = std::move(kept);
  }
};

// ===========================================================================
// UniqueNames
// ===========================================================================

class UniqueNamesPass : public Pass {
 public:
  std::string name() const override { return "UniqueNames"; }
  BugLocation location() const override { return BugLocation::kFrontEnd; }

  void Run(Program& program, const BugConfig& bugs) override {
    NameAllocator names(program);
    ForEachBody(program, [&](BlockStmt& body) {
      class LocalCollector : public Inspector {
       public:
        std::vector<std::string> locals;

       protected:
        void OnStmt(const Stmt& stmt) override {
          if (stmt.kind() == StmtKind::kVarDecl) {
            locals.push_back(static_cast<const VarDeclStmt&>(stmt).name());
          }
        }
      };
      LocalCollector collector;
      collector.VisitStmt(body);
      std::map<std::string, std::string> renames;
      for (const std::string& local : collector.locals) {
        renames[local] = names.Fresh(local);
      }
      RenameRewriter renamer(renames);
      for (StmtPtr& stmt : body.mutable_statements()) {
        renamer.RewriteStmt(stmt);
      }
      if (bugs.Has(BugId::kRenameDeclaredUndefined)) {
        // Seeded fault (§8 class): hoist *uninitialized* declarations to the
        // top of the block. Semantically harmless, but it permutes the order
        // in which undefined values are allocated, which defeats
        // name/order-based matching in translation validation — the
        // "missing simulation relation" false-alarm.
        HoistUninitialized(body);
      }
    });
  }

 private:
  void HoistUninitialized(BlockStmt& block) {
    std::vector<StmtPtr> hoisted;
    std::vector<StmtPtr> rest;
    for (StmtPtr& stmt : block.mutable_statements()) {
      if (stmt->kind() == StmtKind::kVarDecl &&
          static_cast<const VarDeclStmt&>(*stmt).init() == nullptr) {
        hoisted.push_back(std::move(stmt));
      } else {
        rest.push_back(std::move(stmt));
      }
    }
    // The hoisted declarations come out in reverse order — permuting the
    // allocation order of undefined values, which is what defeats
    // name/order matching in the validator.
    std::vector<StmtPtr> out;
    for (auto it = hoisted.rbegin(); it != hoisted.rend(); ++it) {
      out.push_back(std::move(*it));
    }
    for (StmtPtr& stmt : rest) {
      out.push_back(std::move(stmt));
    }
    block.mutable_statements() = std::move(out);
  }
};

// ===========================================================================
// ConstantFolding
// ===========================================================================

class ConstantFoldingRewriter : public Rewriter {
 public:
  explicit ConstantFoldingRewriter(bool wrap_bug) : wrap_bug_(wrap_bug) {}

 protected:
  ExprPtr PostUnary(UnaryExpr& unary) override {
    if (unary.op() == UnaryOp::kLogicalNot) {
      if (unary.operand().kind() == ExprKind::kBoolConst) {
        return MakeBool(!static_cast<const BoolConstExpr&>(unary.operand()).value());
      }
      return nullptr;
    }
    if (unary.operand().kind() != ExprKind::kConstant) {
      return nullptr;
    }
    const BitValue value = static_cast<const ConstantExpr&>(unary.operand()).value();
    switch (unary.op()) {
      case UnaryOp::kComplement:
        return std::make_unique<ConstantExpr>(value.Not());
      case UnaryOp::kNegate:
        return std::make_unique<ConstantExpr>(BitValue(value.width(), 0).Sub(value));
      default:
        return nullptr;
    }
  }

  ExprPtr PostBinary(BinaryExpr& binary) override {
    const Expr& left = binary.left();
    const Expr& right = binary.right();
    if (left.kind() == ExprKind::kBoolConst && right.kind() == ExprKind::kBoolConst) {
      const bool a = static_cast<const BoolConstExpr&>(left).value();
      const bool b = static_cast<const BoolConstExpr&>(right).value();
      switch (binary.op()) {
        case BinaryOp::kLogicalAnd:
          return MakeBool(a && b);
        case BinaryOp::kLogicalOr:
          return MakeBool(a || b);
        case BinaryOp::kEq:
          return MakeBool(a == b);
        case BinaryOp::kNe:
          return MakeBool(a != b);
        default:
          return nullptr;
      }
    }
    if (left.kind() != ExprKind::kConstant || right.kind() != ExprKind::kConstant) {
      // Short-circuit identities on boolean operators.
      if (binary.op() == BinaryOp::kLogicalAnd && left.kind() == ExprKind::kBoolConst) {
        return static_cast<const BoolConstExpr&>(left).value() ? binary.right_slot()->Clone()
                                                               : MakeBool(false);
      }
      if (binary.op() == BinaryOp::kLogicalOr && left.kind() == ExprKind::kBoolConst) {
        return static_cast<const BoolConstExpr&>(left).value() ? MakeBool(true)
                                                               : binary.right_slot()->Clone();
      }
      return nullptr;
    }
    const BitValue a = static_cast<const ConstantExpr&>(left).value();
    const BitValue b = static_cast<const ConstantExpr&>(right).value();
    switch (binary.op()) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul: {
        BitValue folded(1, 0);
        bool overflowed = false;
        if (binary.op() == BinaryOp::kAdd) {
          folded = a.Add(b);
          overflowed = a.bits() + b.bits() != folded.bits();
        } else if (binary.op() == BinaryOp::kSub) {
          folded = a.Sub(b);
          overflowed = a.bits() < b.bits();
        } else {
          folded = a.Mul(b);
          overflowed = a.bits() * b.bits() != folded.bits();
        }
        if (wrap_bug_ && overflowed && folded.width() < 64) {
          // Seeded fault: the fold is computed at the wrong width when the
          // arithmetic wraps, producing an off-by-carry constant.
          folded = folded.Add(BitValue(folded.width(), 1));
        }
        return std::make_unique<ConstantExpr>(folded);
      }
      case BinaryOp::kBitAnd:
        return std::make_unique<ConstantExpr>(a.And(b));
      case BinaryOp::kBitOr:
        return std::make_unique<ConstantExpr>(a.Or(b));
      case BinaryOp::kBitXor:
        return std::make_unique<ConstantExpr>(a.Xor(b));
      case BinaryOp::kShl:
        return std::make_unique<ConstantExpr>(a.Shl(b));
      case BinaryOp::kShr:
        return std::make_unique<ConstantExpr>(a.Shr(b));
      case BinaryOp::kConcat:
        return std::make_unique<ConstantExpr>(a.Concat(b));
      case BinaryOp::kEq:
        return MakeBool(a.Eq(b));
      case BinaryOp::kNe:
        return MakeBool(!a.Eq(b));
      case BinaryOp::kLt:
        return MakeBool(a.Lt(b));
      case BinaryOp::kLe:
        return MakeBool(a.Le(b));
      case BinaryOp::kGt:
        return MakeBool(b.Lt(a));
      case BinaryOp::kGe:
        return MakeBool(b.Le(a));
      default:
        return nullptr;
    }
  }

  ExprPtr PostCast(CastExpr& cast) override {
    if (cast.operand().kind() != ExprKind::kConstant) {
      return nullptr;
    }
    const BitValue value = static_cast<const ConstantExpr&>(cast.operand()).value();
    return std::make_unique<ConstantExpr>(value.Cast(cast.target()->width()));
  }

  ExprPtr PostSlice(SliceExpr& slice) override {
    if (slice.base().kind() != ExprKind::kConstant) {
      return nullptr;
    }
    const BitValue value = static_cast<const ConstantExpr&>(slice.base()).value();
    return std::make_unique<ConstantExpr>(value.Slice(slice.hi(), slice.lo()));
  }

  ExprPtr PostMux(MuxExpr& mux) override {
    if (mux.cond().kind() != ExprKind::kBoolConst) {
      return nullptr;
    }
    return static_cast<const BoolConstExpr&>(mux.cond()).value() ? mux.then_slot()->Clone()
                                                                 : mux.else_slot()->Clone();
  }

  bool RewritesLValues() const override { return false; }

 private:
  bool wrap_bug_;
};

class ConstantFoldingPass : public Pass {
 public:
  std::string name() const override { return "ConstantFolding"; }
  BugLocation location() const override { return BugLocation::kFrontEnd; }

  void Run(Program& program, const BugConfig& bugs) override {
    ConstantFoldingRewriter rewriter(bugs.Has(BugId::kConstantFoldWrapWidth));
    rewriter.RewriteProgram(program);
  }
};

// ===========================================================================
// StrengthReduction
// ===========================================================================

class StrengthReductionRewriter : public Rewriter {
 public:
  explicit StrengthReductionRewriter(bool negative_slice_bug)
      : negative_slice_bug_(negative_slice_bug) {}

 protected:
  ExprPtr PostBinary(BinaryExpr& binary) override {
    const bool left_const = binary.left().kind() == ExprKind::kConstant;
    const bool right_const = binary.right().kind() == ExprKind::kConstant;
    if (!left_const && !right_const) {
      return nullptr;
    }
    const BitValue constant =
        left_const ? static_cast<const ConstantExpr&>(binary.left()).value()
                   : static_cast<const ConstantExpr&>(binary.right()).value();
    ExprPtr& other_slot = left_const ? binary.right_slot() : binary.left_slot();
    switch (binary.op()) {
      case BinaryOp::kAdd:
      case BinaryOp::kBitOr:
      case BinaryOp::kBitXor:
        if (constant.bits() == 0) {
          return other_slot->Clone();
        }
        return nullptr;
      case BinaryOp::kSub:
        if (right_const && constant.bits() == 0) {
          return other_slot->Clone();
        }
        return nullptr;
      case BinaryOp::kBitAnd:
        if (constant.bits() == 0) {
          return std::make_unique<ConstantExpr>(BitValue(constant.width(), 0));
        }
        if (constant.bits() == BitValue::MaskFor(constant.width())) {
          return other_slot->Clone();
        }
        return nullptr;
      case BinaryOp::kMul: {
        if (constant.bits() == 0) {
          return std::make_unique<ConstantExpr>(BitValue(constant.width(), 0));
        }
        if (constant.bits() == 1) {
          return other_slot->Clone();
        }
        // x * 2^k  ->  x << k
        const uint64_t bits = constant.bits();
        if ((bits & (bits - 1)) == 0) {
          uint32_t shift = 0;
          while ((uint64_t{1} << shift) != bits) {
            ++shift;
          }
          auto result = MakeBinary(BinaryOp::kShl, other_slot->Clone(),
                                   MakeConstant(constant.width(), shift));
          result->set_type(binary.type());
          return result;
        }
        return nullptr;
      }
      case BinaryOp::kShl:
        if (right_const && constant.bits() == 0) {
          return other_slot->Clone();
        }
        return nullptr;
      case BinaryOp::kShr: {
        if (!right_const) {
          return nullptr;
        }
        if (constant.bits() == 0) {
          return other_slot->Clone();
        }
        if (binary.left().type() == nullptr || !binary.left().type()->IsBit()) {
          return nullptr;
        }
        const uint32_t width = binary.left().type()->width();
        if (constant.bits() >= width) {
          return std::make_unique<ConstantExpr>(BitValue(width, 0));
        }
        const auto shift = static_cast<uint32_t>(constant.bits());
        if (negative_slice_bug_) {
          // Seeded fault (Fig. 5c root cause): the slice bounds are computed
          // without the safety check, yielding an inverted (hi < lo) slice.
          // The re-type-check then rejects this valid program.
          return std::make_unique<CastExpr>(
              Type::Bit(width),
              std::make_unique<SliceExpr>(binary.left_slot()->Clone(), shift - 1, width - 1));
        }
        // Correct rewrite: x >> c  ->  (bit<w>) x[w-1:c]
        return std::make_unique<CastExpr>(
            Type::Bit(width),
            std::make_unique<SliceExpr>(binary.left_slot()->Clone(), width - 1, shift));
      }
      default:
        return nullptr;
    }
  }

  bool RewritesLValues() const override { return false; }

 private:
  bool negative_slice_bug_;
};

class StrengthReductionPass : public Pass {
 public:
  std::string name() const override { return "StrengthReduction"; }
  BugLocation location() const override { return BugLocation::kFrontEnd; }

  void Run(Program& program, const BugConfig& bugs) override {
    StrengthReductionRewriter rewriter(bugs.Has(BugId::kStrengthReductionNegativeSlice));
    rewriter.RewriteProgram(program);
  }
};

// ===========================================================================
// SimplifyDefUse (dead-store elimination)
// ===========================================================================

class SimplifyDefUsePass : public Pass {
 public:
  std::string name() const override { return "SimplifyDefUse"; }
  BugLocation location() const override { return BugLocation::kFrontEnd; }

  void Run(Program& program, const BugConfig& bugs) override {
    ignore_inout_uses_ = bugs.Has(BugId::kSimplifyDefUseDropsInoutWrite);
    slice_kills_ = bugs.Has(BugId::kSliceWriteTreatedAsFullDef);
    CollectTables(program);
    ForEachBody(program, [&](BlockStmt& body) {
      CollectBodyLocals(body);
      ProcessBlock(body, body);
      RemoveUnusedDecls(body);
    });
  }

 private:
  std::set<std::string> locals_;
  std::map<std::string, const TableDecl*> tables_;
  std::map<std::string, const ActionDecl*> actions_;

  // Indexes tables and actions so that a `t.apply()` can be analyzed
  // precisely: it reads exactly what its key expressions and listed action
  // bodies read, rather than being treated as a read of every variable
  // (which would keep every local alive in table-heavy programs and mask
  // genuinely dead stores).
  void CollectTables(const Program& program) {
    tables_.clear();
    actions_.clear();
    for (const DeclPtr& decl : program.decls()) {
      if (decl->kind() != DeclKind::kControl) {
        continue;
      }
      for (const DeclPtr& local : static_cast<const ControlDecl&>(*decl).locals()) {
        if (local->kind() == DeclKind::kTable) {
          tables_[local->name()] = static_cast<const TableDecl*>(local.get());
        } else if (local->kind() == DeclKind::kAction) {
          actions_[local->name()] = static_cast<const ActionDecl*>(local.get());
        }
      }
    }
  }

  // Whether applying `table` can read variable `name`: through a key
  // expression, a default-action argument, or any listed action's body.
  bool TableApplyReads(const std::string& table, const std::string& name) const {
    auto table_it = tables_.find(table);
    if (table_it == tables_.end()) {
      return true;  // unknown table: stay conservative
    }
    const TableDecl& decl = *table_it->second;
    for (const TableKey& key : decl.keys()) {
      if (ExprReadsVar(*key.expr, name)) {
        return true;
      }
    }
    for (const ExprPtr& arg : decl.default_args()) {
      if (ExprReadsVar(*arg, name)) {
        return true;
      }
    }
    for (const std::string& action_name : decl.actions()) {
      auto action_it = actions_.find(action_name);
      if (action_it != actions_.end() && StmtReads(action_it->second->body(), name)) {
        return true;
      }
    }
    return false;
  }

  void CollectBodyLocals(const BlockStmt& body) {
    locals_.clear();
    class Collector : public Inspector {
     public:
      explicit Collector(std::set<std::string>& locals) : locals_(locals) {}

     protected:
      void OnStmt(const Stmt& stmt) override {
        if (stmt.kind() == StmtKind::kVarDecl) {
          locals_.insert(static_cast<const VarDeclStmt&>(stmt).name());
        }
      }

     private:
      std::set<std::string>& locals_;
    };
    Collector collector(locals_);
    collector.VisitStmt(body);
  }

  // Whether `stmt` (or its subtree) reads variable `name`. With the seeded
  // Fig. 5a fault, inout/out argument positions do not count as uses.
  bool StmtReads(const Stmt& stmt, const std::string& name) const {
    switch (stmt.kind()) {
      case StmtKind::kBlock: {
        for (const StmtPtr& child : static_cast<const BlockStmt&>(stmt).statements()) {
          if (StmtReads(*child, name)) {
            return true;
          }
        }
        return false;
      }
      case StmtKind::kAssign: {
        const auto& assign = static_cast<const AssignStmt&>(stmt);
        if (ExprReadsVar(assign.value(), name)) {
          return true;
        }
        // A slice assignment to `name` reads the untouched bits — unless
        // the seeded Fig. 5d fault is active, which is exactly the missing
        // insight that made p4c delete the disjoint write.
        if (!slice_kills_ && assign.target().kind() != ExprKind::kPath &&
            LValueRoot(assign.target()) == name) {
          return true;
        }
        return false;
      }
      case StmtKind::kIf: {
        const auto& if_stmt = static_cast<const IfStmt&>(stmt);
        if (ExprReadsVar(if_stmt.cond(), name) || StmtReads(if_stmt.then_branch(), name)) {
          return true;
        }
        return if_stmt.else_branch() != nullptr && StmtReads(*if_stmt.else_branch(), name);
      }
      case StmtKind::kVarDecl: {
        const auto& var_decl = static_cast<const VarDeclStmt&>(stmt);
        return var_decl.init() != nullptr && ExprReadsVar(*var_decl.init(), name);
      }
      case StmtKind::kCall: {
        const auto& call = static_cast<const CallStmt&>(stmt).call();
        if (call.receiver() != nullptr && ExprReadsVar(*call.receiver(), name)) {
          return true;
        }
        for (const ExprPtr& arg : call.args()) {
          if (ignore_inout_uses_ && IsLValueShape(*arg) && LValueRoot(*arg) == name) {
            // Seeded fault: an l-value argument (inout/out position) is not
            // counted as a use, so the preceding store looks dead.
            continue;
          }
          if (ExprReadsVar(*arg, name)) {
            return true;
          }
        }
        if (call.call_kind() == CallKind::kTableApply) {
          return TableApplyReads(call.callee(), name);
        }
        return false;
      }
      case StmtKind::kReturn: {
        const auto& return_stmt = static_cast<const ReturnStmt&>(stmt);
        return return_stmt.value() != nullptr && ExprReadsVar(*return_stmt.value(), name);
      }
      case StmtKind::kExit:
      case StmtKind::kEmpty:
        return false;
    }
    return false;
  }

  // Whether `stmt` definitely overwrites the whole variable on every path.
  bool StmtFullyDefines(const Stmt& stmt, const std::string& name) const {
    if (stmt.kind() == StmtKind::kAssign) {
      const auto& assign = static_cast<const AssignStmt&>(stmt);
      if (assign.target().kind() == ExprKind::kPath &&
          static_cast<const PathExpr&>(assign.target()).name() == name) {
        return true;
      }
      if (slice_kills_ && assign.target().kind() == ExprKind::kSlice &&
          LValueRoot(assign.target()) == name) {
        // Seeded fault (Fig. 5d): a partial (slice) write is treated as a
        // full definition, killing earlier stores whose untouched bits are
        // still live.
        return true;
      }
    }
    return false;
  }

  // Is the store to `name` at position `index` in `stmts` dead? Scans
  // forward; a full redefinition stops the scan.
  bool StoreIsDead(const std::vector<StmtPtr>& stmts, size_t index, const std::string& name,
                   const BlockStmt& body) const {
    for (size_t i = index + 1; i < stmts.size(); ++i) {
      if (StmtReads(*stmts[i], name)) {
        return false;
      }
      if (StmtFullyDefines(*stmts[i], name)) {
        return true;
      }
    }
    // Reached the end of this statement list. If this list is the whole
    // body, the local dies here; otherwise (nested block/branch) be
    // conservative and keep the store.
    return &stmts == &body.statements();
  }

  void ProcessBlock(BlockStmt& block, const BlockStmt& body) {
    std::vector<StmtPtr>& stmts = block.mutable_statements();
    for (size_t i = 0; i < stmts.size(); ++i) {
      Stmt& stmt = *stmts[i];
      if (stmt.kind() == StmtKind::kBlock) {
        ProcessBlock(static_cast<BlockStmt&>(stmt), body);
        continue;
      }
      if (stmt.kind() == StmtKind::kIf) {
        auto& if_stmt = static_cast<IfStmt&>(stmt);
        if (if_stmt.then_slot()->kind() == StmtKind::kBlock) {
          ProcessBlock(static_cast<BlockStmt&>(*if_stmt.then_slot()), body);
        }
        if (if_stmt.else_slot() != nullptr &&
            if_stmt.else_slot()->kind() == StmtKind::kBlock) {
          ProcessBlock(static_cast<BlockStmt&>(*if_stmt.else_slot()), body);
        }
        continue;
      }
      if (stmt.kind() == StmtKind::kVarDecl) {
        // A dead *initializer* (overwritten before any read) is dropped,
        // leaving an uninitialized declaration.
        auto& var_decl = static_cast<VarDeclStmt&>(stmt);
        // A call in the initializer may write inout/out arguments — the
        // store's *value* being dead does not make the call removable.
        if (var_decl.init() != nullptr && !ContainsFunctionCall(*var_decl.init()) &&
            &stmts == &body.statements() && StoreIsDead(stmts, i, var_decl.name(), body)) {
          var_decl.init_slot() = nullptr;
        }
        continue;
      }
      if (stmt.kind() != StmtKind::kAssign) {
        continue;
      }
      const auto& assign = static_cast<const AssignStmt&>(stmt);
      if (assign.target().kind() != ExprKind::kPath) {
        continue;
      }
      const std::string& name = static_cast<const PathExpr&>(assign.target()).name();
      if (locals_.count(name) == 0) {
        continue;  // parameters and captured state are always live
      }
      // Only eliminate stores in the top-level statement list of the body:
      // stores inside branches require path-sensitive liveness.
      if (&stmts != &body.statements()) {
        continue;
      }
      // Keep stores whose RHS calls a function: the call's inout/out
      // writes are side effects that survive the value being dead.
      if (!ContainsFunctionCall(assign.value()) && StoreIsDead(stmts, i, name, body)) {
        stmts[i] = std::make_unique<EmptyStmt>();
      }
    }
    FlattenBlocks(block);
  }

  void RemoveUnusedDecls(BlockStmt& body) {
    // A declaration with no reads anywhere can go. (With the seeded Fig. 5a
    // fault, a variable whose only use is an inout argument is judged
    // unused; deleting its declaration leaves the argument dangling and the
    // re-type-check crashes — the snowball effect.)
    std::vector<StmtPtr>& stmts = body.mutable_statements();
    for (size_t i = 0; i < stmts.size(); ++i) {
      if (stmts[i]->kind() != StmtKind::kVarDecl) {
        continue;
      }
      const auto& var_decl = static_cast<const VarDeclStmt&>(*stmts[i]);
      const std::string& name = var_decl.name();
      bool used = false;
      for (size_t j = 0; j < stmts.size(); ++j) {
        if (j == i) {
          continue;
        }
        if (StmtReads(*stmts[j], name)) {
          used = true;
          break;
        }
        // Writes via slices/members also require the declaration.
        if (!ignore_inout_uses_ && WritesVar(*stmts[j], name)) {
          used = true;
          break;
        }
        if (ignore_inout_uses_ && WritesVarDirectly(*stmts[j], name)) {
          used = true;
          break;
        }
      }
      if (!used && (var_decl.init() == nullptr || !ContainsFunctionCall(*var_decl.init()))) {
        stmts[i] = std::make_unique<EmptyStmt>();
      }
    }
    FlattenBlocks(body);
  }

  static bool WritesVar(const Stmt& stmt, const std::string& name) {
    switch (stmt.kind()) {
      case StmtKind::kBlock: {
        for (const StmtPtr& child : static_cast<const BlockStmt&>(stmt).statements()) {
          if (WritesVar(*child, name)) {
            return true;
          }
        }
        return false;
      }
      case StmtKind::kAssign:
        return LValueRoot(static_cast<const AssignStmt&>(stmt).target()) == name;
      case StmtKind::kIf: {
        const auto& if_stmt = static_cast<const IfStmt&>(stmt);
        if (WritesVar(if_stmt.then_branch(), name)) {
          return true;
        }
        return if_stmt.else_branch() != nullptr && WritesVar(*if_stmt.else_branch(), name);
      }
      case StmtKind::kCall: {
        const auto& call = static_cast<const CallStmt&>(stmt).call();
        for (const ExprPtr& arg : call.args()) {
          if (IsLValueShape(*arg) && LValueRoot(*arg) == name) {
            return true;
          }
        }
        return false;
      }
      default:
        return false;
    }
  }

  static bool WritesVarDirectly(const Stmt& stmt, const std::string& name) {
    // Like WritesVar but ignoring call-argument positions (the seeded
    // fault's view of the world).
    switch (stmt.kind()) {
      case StmtKind::kBlock: {
        for (const StmtPtr& child : static_cast<const BlockStmt&>(stmt).statements()) {
          if (WritesVarDirectly(*child, name)) {
            return true;
          }
        }
        return false;
      }
      case StmtKind::kAssign:
        return LValueRoot(static_cast<const AssignStmt&>(stmt).target()) == name;
      case StmtKind::kIf: {
        const auto& if_stmt = static_cast<const IfStmt&>(stmt);
        if (WritesVarDirectly(if_stmt.then_branch(), name)) {
          return true;
        }
        return if_stmt.else_branch() != nullptr &&
               WritesVarDirectly(*if_stmt.else_branch(), name);
      }
      default:
        return false;
    }
  }

  bool ignore_inout_uses_ = false;
  bool slice_kills_ = false;
};

}  // namespace

std::unique_ptr<Pass> MakeSideEffectOrderingPass() {
  return std::make_unique<SideEffectOrderingPass>();
}
std::unique_ptr<Pass> MakeInlineFunctionsPass() { return std::make_unique<InlineFunctionsPass>(); }
std::unique_ptr<Pass> MakeRemoveActionParametersPass() {
  return std::make_unique<RemoveActionParametersPass>();
}
std::unique_ptr<Pass> MakeUniqueNamesPass() { return std::make_unique<UniqueNamesPass>(); }
std::unique_ptr<Pass> MakeConstantFoldingPass() {
  return std::make_unique<ConstantFoldingPass>();
}
std::unique_ptr<Pass> MakeStrengthReductionPass() {
  return std::make_unique<StrengthReductionPass>();
}
std::unique_ptr<Pass> MakeSimplifyDefUsePass() { return std::make_unique<SimplifyDefUsePass>(); }

}  // namespace gauntlet
