#ifndef SRC_PASSES_PASS_H_
#define SRC_PASSES_PASS_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/passes/bugs.h"

namespace gauntlet {

// A program transformation in the nanopass pipeline (p4c-style: many thin
// passes, §7.3 credits this architecture with making semantic bugs cheap to
// localize and fix). Every pass must preserve program semantics — the
// seeded faults in BugConfig deliberately break that contract.
class Pass {
 public:
  virtual ~Pass() = default;

  virtual std::string name() const = 0;
  virtual BugLocation location() const = 0;
  virtual void Run(Program& program, const BugConfig& bugs) = 0;
};

// Snapshot callback invoked after each pass that changed the program:
// (pass name, program after the pass). This is the analogue of p4test's
// --top4 flag that dumps the program after every pass (§5.2).
using PassSnapshotFn =
    std::function<void(const std::string& pass_name, const Program& program)>;

// Runs passes in order, re-type-checking after each one (p4c re-runs type
// inference the same way). A type-check failure after a pass means the pass
// emitted an ill-formed program — the "snowball" crash class of §7.2 — and
// surfaces as CompilerBugError.
class PassManager {
 public:
  void Add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }
  const std::vector<std::unique_ptr<Pass>>& passes() const { return passes_; }

  void Run(Program& program, const BugConfig& bugs,
           const PassSnapshotFn& snapshot = nullptr) const;

  // The standard front- and mid-end pipeline shared by every back end
  // (P4C's role in Figure 1). 12 passes in dependency order.
  static PassManager StandardPipeline();

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// Helpers shared by several passes.

// Allocates fresh variable names that collide with nothing in the program.
class NameAllocator {
 public:
  explicit NameAllocator(const Program& program);
  std::string Fresh(const std::string& hint);

 private:
  std::set<std::string> used_;
  int counter_ = 0;
};

// True if the statement tree contains a return / an exit / any call.
bool ContainsReturn(const Stmt& stmt);
bool ContainsExit(const Stmt& stmt);
bool ContainsFunctionCall(const Expr& expr);
// True if the expression reads variable `name` (as a path root).
bool ExprReadsVar(const Expr& expr, const std::string& name);
// The root variable name of an l-value expression.
std::string LValueRoot(const Expr& expr);

}  // namespace gauntlet

#endif  // SRC_PASSES_PASS_H_
