#ifndef SRC_PASSES_BUGS_H_
#define SRC_PASSES_BUGS_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/typecheck/typecheck.h"

namespace gauntlet {

// The seeded-fault catalogue. Each entry models a concrete p4c/Tofino bug
// class documented in the paper (section 7.2 and Figure 5); enabling one
// makes the corresponding pass misbehave in exactly that way. The
// evaluation benchmarks run bug-finding campaigns against subsets of this
// catalogue to regenerate the paper's tables (see DESIGN.md).
enum class BugId {
  // --- type checker (front end) ---
  kTypeCheckerShiftCrash,          // Fig. 5b: crash inferring a shift width
  kTypeCheckerRejectSliceCompare,  // Fig. 5c: legal comparison rejected

  // --- front-end passes ---
  kSideEffectOrderSwap,        // §7.2: argument side effects evaluated right-to-left
  kInlinerSkipsNestedCall,     // §7.2: InlineFunctions misses a call; later pass crashes
  kExitIgnoresCopyOut,         // Fig. 5f: statement sunk below exit in RemoveActionParameters
  kRenameDeclaredUndefined,    // §8: UniqueNames renames an undefined variable (false-alarm)
  kSimplifyDefUseDropsInoutWrite,  // Fig. 5a: inout uses treated as dead
  kSliceWriteTreatedAsFullDef,     // Fig. 5d: slice copy-out kills disjoint partial writes
  kConstantFoldWrapWidth,          // folds at 64-bit, ignoring the declared width
  kStrengthReductionNegativeSlice, // Fig. 5c trigger: rewrites slices with inverted bounds

  // --- mid-end passes ---
  kPredicationLostElse,      // §7.2: Predication drops the else-branch write
  kInvalidHeaderCopyProp,    // Fig. 5e: copy-prop across setValid/setInvalid
  kTempSubstAcrossWrite,     // LocalCopyElimination substitutes across a clobber
  kDeadCodeAfterExitCall,    // DCE assumes a call always exits
  kEliminateSlicesWrongMask, // slice-lowering computes an off-by-one mask

  // --- BMv2 back end ---
  kBmv2EmitIgnoresValidity,     // deparser emits invalid headers
  kBmv2TableMissRunsFirstAction,  // miss executes the first listed action
  kBmv2TablePriorityInversion,  // last matching entry wins instead of first

  // --- Tofino back end (closed source; only black-box testing sees these) ---
  kTofinoPhvNarrowWide,         // >32-bit ALU ops truncated to 32 bits
  kTofinoTableDefaultSkipped,   // default action skipped on miss
  kTofinoDeparserEmitsInvalid,  // deparser ignores validity
  kTofinoActionDataEndianSwap,  // multi-byte action data loaded byte-reversed
  kTofinoCrashOnWideArith,      // crash: no PHV allocation for wide multiply
  kTofinoCrashManyTables,       // crash: stage allocator asserts on >4 tables

  // --- eBPF back end (XDP-flavoured software target) ---
  kEbpfParserExtractReversed,  // parser extracts a header's fields in reverse order
  kEbpfMapMissDropsPacket,     // a map (table) miss aborts/drops instead of the default
  kEbpfMapKeyByteOrderSwap,    // map lookups read multi-byte keys host-order while the
                               // control plane installed them network-order
  kEbpfCrashStackOverflow,     // crash: parsed headers exceed the modelled stack frame
  kEbpfCrashVerifierLoopBound, // crash: the in-kernel verifier rejects a parse loop
                               // unrolled past its bounded-iteration budget
};

enum class BugKind { kCrash, kSemantic };

// Where in the compiler the fault lives — the paper's Table 3 dimension.
enum class BugLocation { kFrontEnd, kMidEnd, kBackEndBmv2, kBackEndTofino, kBackEndEbpf };

// Human-readable location label ("front end", "bmv2 backend", ...).
std::string BugLocationToString(BugLocation location);

// True for the black-box back-end locations (everything behind the target
// layer; only packet-test replay can see faults seeded there).
bool IsBackEndLocation(BugLocation location);

struct BugInfo {
  BugId id;
  const char* name;        // stable identifier for reports
  BugKind kind;
  BugLocation location;
  const char* pass_name;   // pass (or component) the fault is seeded into
  const char* paper_ref;   // figure/section this models
};

// Full catalogue in a stable order.
const std::vector<BugInfo>& BugCatalogue();
const BugInfo& GetBugInfo(BugId id);
std::string BugIdToString(BugId id);

// Inverse of BugIdToString: catalogue name -> id, nullopt for unknown
// names. Deserialization entry point for shard-result files (src/dist/)
// and fault-name CLI flags.
std::optional<BugId> BugIdFromString(const std::string& name);

// The set of faults enabled for one compiler instantiation.
class BugConfig {
 public:
  BugConfig() = default;
  explicit BugConfig(std::set<BugId> enabled) : enabled_(std::move(enabled)) {}

  static BugConfig None() { return BugConfig(); }
  static BugConfig All();

  bool Has(BugId id) const { return enabled_.count(id) > 0; }
  void Enable(BugId id) { enabled_.insert(id); }
  void Disable(BugId id) { enabled_.erase(id); }
  const std::set<BugId>& enabled() const { return enabled_; }
  bool empty() const { return enabled_.empty(); }

 private:
  std::set<BugId> enabled_;
};

// The type checker is configured separately from the pass pipeline; this is
// the single place that maps the checker's catalogue entries onto its
// options, shared by the validator, the CLI, and the back-end compilers.
TypeCheckOptions TypeCheckOptionsFromBugs(const BugConfig& bugs);

}  // namespace gauntlet

#endif  // SRC_PASSES_BUGS_H_
