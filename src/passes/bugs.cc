#include "src/passes/bugs.h"

#include "src/support/error.h"

namespace gauntlet {

const std::vector<BugInfo>& BugCatalogue() {
  static const std::vector<BugInfo> catalogue = {
      {BugId::kTypeCheckerShiftCrash, "typechecker-shift-crash", BugKind::kCrash,
       BugLocation::kFrontEnd, "TypeChecker", "Fig. 5b"},
      {BugId::kTypeCheckerRejectSliceCompare, "typechecker-reject-slice-compare",
       BugKind::kCrash, BugLocation::kFrontEnd, "TypeChecker", "Fig. 5c"},
      {BugId::kSideEffectOrderSwap, "side-effect-order-swap", BugKind::kSemantic,
       BugLocation::kFrontEnd, "SideEffectOrdering", "§7.2 side effects"},
      {BugId::kInlinerSkipsNestedCall, "inliner-skips-nested-call", BugKind::kCrash,
       BugLocation::kFrontEnd, "InlineFunctions", "§7.2 snowball effects"},
      {BugId::kExitIgnoresCopyOut, "exit-ignores-copy-out", BugKind::kSemantic,
       BugLocation::kFrontEnd, "RemoveActionParameters", "Fig. 5f"},
      {BugId::kRenameDeclaredUndefined, "rename-declared-undefined", BugKind::kSemantic,
       BugLocation::kFrontEnd, "UniqueNames", "§8 simulation relations"},
      {BugId::kSimplifyDefUseDropsInoutWrite, "defuse-drops-inout-write", BugKind::kSemantic,
       BugLocation::kFrontEnd, "SimplifyDefUse", "Fig. 5a"},
      {BugId::kSliceWriteTreatedAsFullDef, "slice-write-full-def", BugKind::kSemantic,
       BugLocation::kFrontEnd, "SimplifyDefUse", "Fig. 5d"},
      {BugId::kConstantFoldWrapWidth, "constfold-wrap-width", BugKind::kSemantic,
       BugLocation::kFrontEnd, "ConstantFolding", "§7.2"},
      {BugId::kStrengthReductionNegativeSlice, "strength-reduction-negative-slice",
       BugKind::kCrash, BugLocation::kFrontEnd, "StrengthReduction", "Fig. 5c"},
      {BugId::kPredicationLostElse, "predication-lost-else", BugKind::kSemantic,
       BugLocation::kMidEnd, "Predication", "§7.2 Predication"},
      {BugId::kInvalidHeaderCopyProp, "invalid-header-copy-prop", BugKind::kSemantic,
       BugLocation::kMidEnd, "CopyPropagation", "Fig. 5e"},
      {BugId::kTempSubstAcrossWrite, "temp-subst-across-write", BugKind::kSemantic,
       BugLocation::kMidEnd, "LocalCopyElimination", "§7.2"},
      {BugId::kDeadCodeAfterExitCall, "dce-after-exit-call", BugKind::kSemantic,
       BugLocation::kMidEnd, "DeadCodeElimination", "§7.2"},
      {BugId::kEliminateSlicesWrongMask, "eliminate-slices-wrong-mask", BugKind::kSemantic,
       BugLocation::kMidEnd, "EliminateSlices", "§7.2"},
      {BugId::kBmv2EmitIgnoresValidity, "bmv2-emit-ignores-validity", BugKind::kSemantic,
       BugLocation::kBackEndBmv2, "Bmv2Deparser", "§7.1 BMv2 bugs"},
      {BugId::kBmv2TableMissRunsFirstAction, "bmv2-miss-runs-first-action",
       BugKind::kSemantic, BugLocation::kBackEndBmv2, "Bmv2TableEngine", "§7.1 BMv2 bugs"},
      {BugId::kBmv2TablePriorityInversion, "bmv2-table-priority-inversion",
       BugKind::kSemantic, BugLocation::kBackEndBmv2, "Bmv2TableEngine",
       "§7.1 BMv2 bugs (entry shadowing)"},
      {BugId::kTofinoPhvNarrowWide, "tofino-phv-narrow-wide", BugKind::kSemantic,
       BugLocation::kBackEndTofino, "TofinoPhvAllocation", "§7.1 Tofino bugs"},
      {BugId::kTofinoTableDefaultSkipped, "tofino-default-skipped", BugKind::kSemantic,
       BugLocation::kBackEndTofino, "TofinoTableLowering", "§7.1 Tofino bugs"},
      {BugId::kTofinoDeparserEmitsInvalid, "tofino-deparser-emits-invalid",
       BugKind::kSemantic, BugLocation::kBackEndTofino, "TofinoDeparser", "§7.1 Tofino bugs"},
      {BugId::kTofinoActionDataEndianSwap, "tofino-action-data-endian-swap",
       BugKind::kSemantic, BugLocation::kBackEndTofino, "TofinoActionDataPacking",
       "§7.1 Tofino bugs (driver packing)"},
      {BugId::kTofinoCrashOnWideArith, "tofino-crash-wide-arith", BugKind::kCrash,
       BugLocation::kBackEndTofino, "TofinoPhvAllocation", "§7.1 Tofino bugs"},
      {BugId::kTofinoCrashManyTables, "tofino-crash-many-tables", BugKind::kCrash,
       BugLocation::kBackEndTofino, "TofinoStageAllocator", "§7.1 Tofino bugs"},
      {BugId::kEbpfParserExtractReversed, "ebpf-parser-extract-reversed",
       BugKind::kSemantic, BugLocation::kBackEndEbpf, "EbpfParserGen",
       "§4.2 back-end skeletons (parser field order)"},
      {BugId::kEbpfMapMissDropsPacket, "ebpf-map-miss-drops-packet", BugKind::kSemantic,
       BugLocation::kBackEndEbpf, "EbpfMapLowering", "§4.2 back-end skeletons (map miss)"},
      {BugId::kEbpfMapKeyByteOrderSwap, "ebpf-map-key-byte-order", BugKind::kSemantic,
       BugLocation::kBackEndEbpf, "EbpfMapKeyCodec",
       "§4.2 back-end skeletons (map-key byte order)"},
      {BugId::kEbpfCrashStackOverflow, "ebpf-crash-stack-overflow", BugKind::kCrash,
       BugLocation::kBackEndEbpf, "EbpfStackAllocator",
       "§4.2 back-end skeletons (stack frame)"},
      {BugId::kEbpfCrashVerifierLoopBound, "ebpf-crash-verifier-loop-bound", BugKind::kCrash,
       BugLocation::kBackEndEbpf, "EbpfVerifier",
       "§4.2 back-end skeletons (bounded parse loop)"},
  };
  return catalogue;
}

std::string BugLocationToString(BugLocation location) {
  switch (location) {
    case BugLocation::kFrontEnd:
      return "front end";
    case BugLocation::kMidEnd:
      return "mid end";
    case BugLocation::kBackEndBmv2:
      return "bmv2 backend";
    case BugLocation::kBackEndTofino:
      return "tofino backend";
    case BugLocation::kBackEndEbpf:
      return "ebpf backend";
  }
  return "<invalid>";
}

bool IsBackEndLocation(BugLocation location) {
  return location == BugLocation::kBackEndBmv2 || location == BugLocation::kBackEndTofino ||
         location == BugLocation::kBackEndEbpf;
}

const BugInfo& GetBugInfo(BugId id) {
  for (const BugInfo& info : BugCatalogue()) {
    if (info.id == id) {
      return info;
    }
  }
  GAUNTLET_BUG_CHECK(false, "BugId missing from catalogue");
  return BugCatalogue().front();
}

std::string BugIdToString(BugId id) { return GetBugInfo(id).name; }

std::optional<BugId> BugIdFromString(const std::string& name) {
  for (const BugInfo& info : BugCatalogue()) {
    if (name == info.name) {
      return info.id;
    }
  }
  return std::nullopt;
}

BugConfig BugConfig::All() {
  BugConfig config;
  for (const BugInfo& info : BugCatalogue()) {
    config.Enable(info.id);
  }
  return config;
}

TypeCheckOptions TypeCheckOptionsFromBugs(const BugConfig& bugs) {
  TypeCheckOptions options;
  options.bug_shift_crash = bugs.Has(BugId::kTypeCheckerShiftCrash);
  options.bug_reject_slice_compare = bugs.Has(BugId::kTypeCheckerRejectSliceCompare);
  return options;
}

}  // namespace gauntlet
