#ifndef SRC_TARGET_CONCRETE_H_
#define SRC_TARGET_CONCRETE_H_

#include <map>
#include <string>

#include "src/ast/program.h"
#include "src/table/table_model.h"
#include "src/target/stf.h"

namespace gauntlet {

// Behavioral deviations a buggy back end bakes into its compiled artifact
// (the semantic, non-crashing entries of the back-end fault catalogue in
// src/passes/bugs.h). The compilers translate enabled BugIds into this
// struct; the clean configuration is all-false.
struct TargetQuirks {
  // kBmv2EmitIgnoresValidity / kTofinoDeparserEmitsInvalid: the deparser
  // emits headers regardless of their validity bit.
  bool emit_ignores_validity = false;
  // kBmv2TableMissRunsFirstAction: a table miss runs the first listed
  // action with zeroed action data instead of the default action.
  bool miss_runs_first_action = false;
  // kTofinoTableDefaultSkipped: a table miss skips the default action.
  bool skip_default_action = false;
  // kTofinoPhvNarrowWide: >32-bit add/sub/mul are computed in a 32-bit
  // container, losing carries into (and contents of) the upper bits.
  bool narrow_alu_containers = false;
  // kBmv2TablePriorityInversion: when several installed entries match a
  // key, the last installed entry wins instead of the first (first-match
  // shadowing is inverted).
  bool match_last_entry = false;
  // kTofinoActionDataEndianSwap: control-plane action data wider than one
  // byte is loaded with its byte order reversed (driver packs the argument
  // little-endian, the match unit reads it big-endian).
  bool swap_action_data_bytes = false;
  // kEbpfParserExtractReversed: extract fills a header's fields in reverse
  // declaration order (the generated parse loop walks the field list
  // backwards), so the first bits on the wire land in the last field.
  bool reverse_extract_field_order = false;
  // kEbpfMapMissDropsPacket: a lookup miss on a keyed table aborts the
  // program (XDP_ABORTED) instead of running the default action, dropping
  // the packet.
  bool miss_drops_packet = false;
  // kEbpfMapKeyByteOrderSwap: multi-byte lookup keys are read in host byte
  // order while the control plane installed the entries in network order,
  // so the lookup compares byte-reversed keys against the installed ones.
  // Whole-byte keys of 16+ bits only; single bytes have no order to confuse.
  bool swap_map_key_bytes = false;
};

// Translates the table-related quirk bits into the declarative table
// semantics of src/table/: match_last_entry -> MatchOrder::kLastInstalled,
// swap_map_key_bytes -> KeyTransform::kReverseBytes, swap_action_data_bytes
// -> DataTransform::kReverseBytes, and the miss-behavior trio
// (miss_drops_packet / miss_runs_first_action / skip_default_action) onto
// MissBehavior. This is the *only* place quirk booleans meet table
// semantics; everything downstream consumes the TableSemantics value, so the
// concrete executor cannot drift from the shared model.
TableSemantics TableSemanticsFromQuirks(const TargetQuirks& quirks);

// The concrete reference executor: runs a type-checked program on one
// concrete packet plus table configuration, block by block along the
// package pipeline (Figure 1). It implements exactly the semantics the
// symbolic interpreter encodes into SMT, with every undefined value pinned
// to zero (the zero-initializing-target convention of section 6.2):
//
//   * copy-in/copy-out calling convention, with copy-out happening
//     unconditionally even when the callee exits (the specification
//     interpretation that resolved the Fig. 5f ambiguity);
//   * table semantics come from the shared model layer (src/table/): each
//     lookup resolves through TableModel::Resolve under the TableSemantics
//     the enabled quirks translate to — exact-match over the installed
//     entries, first-installed wins, default action (with its compile-time
//     arguments) on a miss, keyless tables always run the default;
//   * header validity: setValid on an invalid header zeroes the fields
//     (fresh unknowns = zero); only valid headers are emitted; fields of
//     invalid headers read as zero across block boundaries;
//   * parsers: extract consumes packet bits in order, a short packet or a
//     reject transition drops the packet, select takes the first matching
//     case in order.
//
// The same executor, parameterized by TargetQuirks, is the execution engine
// behind every registered target's compiled artifact (ConcreteExecutable in
// target.h); with default quirks it is the trustworthy source-level oracle
// those targets are compared against.
class ConcreteInterpreter {
 public:
  // Resolves every declared table through the shared model layer once, up
  // front — packet replay then pays a map lookup per table apply instead of
  // re-walking the control's action declarations.
  explicit ConcreteInterpreter(const Program& program, const TargetQuirks& quirks = {});

  // Full pipeline: parser -> ingress [-> egress] -> deparser. Requires the
  // package to bind at least parser, ingress and deparser blocks (throws
  // UnsupportedError otherwise).
  PacketResult RunPacket(const BitString& packet, const TableConfig& tables) const;

  // Runs only the ingress control on scalar leaf inputs named exactly like
  // the symbolic interpreter's input variables ("hdr.h0.f0",
  // "hdr.h0.$valid", ...; bools as width-1 values; missing leaves read as
  // zero). Returns every output leaf the symbolic block semantics would
  // produce — flattened inout/out parameters with invalid-header fields
  // canonicalized to zero, plus "$exited".
  std::map<std::string, BitValue> RunIngressOnScalars(
      const std::map<std::string, BitValue>& inputs, const TableConfig& tables) const;

 private:
  const Program& program_;
  TargetQuirks quirks_;
  // One model per declared table, keyed by the interned declaration.
  std::map<const TableDecl*, TableModel> models_;
};

}  // namespace gauntlet

#endif  // SRC_TARGET_CONCRETE_H_
