#include "src/target/lowering.h"

#include <functional>
#include <map>
#include <set>

#include "src/ast/visitor.h"
#include "src/passes/pass.h"
#include "src/typecheck/typecheck.h"

namespace gauntlet {

ProgramPtr LowerThroughPipeline(const Program& program, const BugConfig& bugs) {
  ProgramPtr lowered = program.Clone();
  TypeCheck(*lowered, TypeCheckOptionsFromBugs(bugs));
  PassManager::StandardPipeline().Run(*lowered, bugs);
  return lowered;
}

void CheckNoResidualCalls(const Program& program, const char* backend_name) {
  class Finder : public Inspector {
   public:
    bool found = false;

   protected:
    void OnExpr(const Expr& expr) override {
      if (expr.kind() == ExprKind::kCall) {
        found |= static_cast<const CallExpr&>(expr).call_kind() == CallKind::kFunction;
      }
    }
  };
  Finder finder;
  finder.VisitProgram(program);
  if (finder.found) {
    throw CompilerBugError(std::string(backend_name) + " back end cannot lower " +
                           kResidualCallsNeedle);
  }
}

int CountTables(const Program& program) {
  class Counter : public Inspector {
   public:
    int count = 0;

   protected:
    void OnTable(const TableDecl&) override { ++count; }
  };
  Counter counter;
  counter.VisitProgram(program);
  return counter.count;
}

int TotalHeaderBits(const Program& program) {
  int bits = 0;
  for (const TypePtr& type : program.type_decls()) {
    if (!type->IsHeader()) {
      continue;
    }
    for (const Type::Field& field : type->fields()) {
      bits += static_cast<int>(field.type->width());
    }
  }
  return bits;
}

int ParserMaxChainDepth(const Program& program, int limit) {
  const PackageBlock* parser_block = program.FindBlock(BlockRole::kParser);
  if (parser_block == nullptr) {
    return 0;
  }
  const ParserDecl* parser = program.FindParser(parser_block->decl_name);
  if (parser == nullptr) {
    return 0;
  }
  // Memoized longest-chain DFS: linear in states x transitions for acyclic
  // graphs (a naive path walk is exponential in branching select chains).
  // A state on a cycle counts as `limit` — its chain is unbounded, which is
  // all the resource model needs to know.
  std::map<std::string, int> memo;
  std::set<std::string> on_path;
  const std::function<int(const std::string&)> chain = [&](const std::string& name) -> int {
    if (name == "accept" || name == "reject") {
      return 0;
    }
    if (on_path.count(name) > 0) {
      return limit;  // back edge: the parse loop never terminates statically
    }
    const auto known = memo.find(name);
    if (known != memo.end()) {
      return known->second;
    }
    const ParserState* state = parser->FindState(name);
    if (state == nullptr) {
      return 0;  // malformed transitions are the type checker's problem
    }
    on_path.insert(name);
    int deepest = 1;
    for (const SelectCase& select_case : state->cases) {
      const int branch = 1 + chain(select_case.next_state);
      deepest = branch > deepest ? branch : deepest;
    }
    on_path.erase(name);
    deepest = deepest > limit ? limit : deepest;
    memo[name] = deepest;
    return deepest;
  };
  return chain("start");
}

bool HasWideMultiply(const Program& program) {
  class Finder : public Inspector {
   public:
    bool found = false;

   protected:
    void OnExpr(const Expr& expr) override {
      if (expr.kind() != ExprKind::kBinary) {
        return;
      }
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      found |= binary.op() == BinaryOp::kMul && binary.type() != nullptr &&
               binary.type()->IsBit() && binary.type()->width() > 32;
    }
  };
  Finder finder;
  finder.VisitProgram(program);
  return finder.found;
}

}  // namespace gauntlet
