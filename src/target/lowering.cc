#include "src/target/lowering.h"

#include "src/ast/visitor.h"
#include "src/passes/pass.h"
#include "src/typecheck/typecheck.h"

namespace gauntlet {

ProgramPtr LowerThroughPipeline(const Program& program, const BugConfig& bugs) {
  ProgramPtr lowered = program.Clone();
  TypeCheck(*lowered, TypeCheckOptionsFromBugs(bugs));
  PassManager::StandardPipeline().Run(*lowered, bugs);
  return lowered;
}

void CheckNoResidualCalls(const Program& program, const char* backend_name) {
  class Finder : public Inspector {
   public:
    bool found = false;

   protected:
    void OnExpr(const Expr& expr) override {
      if (expr.kind() == ExprKind::kCall) {
        found |= static_cast<const CallExpr&>(expr).call_kind() == CallKind::kFunction;
      }
    }
  };
  Finder finder;
  finder.VisitProgram(program);
  if (finder.found) {
    throw CompilerBugError(std::string(backend_name) + " back end cannot lower " +
                           kResidualCallsNeedle);
  }
}

int CountTables(const Program& program) {
  class Counter : public Inspector {
   public:
    int count = 0;

   protected:
    void OnTable(const TableDecl&) override { ++count; }
  };
  Counter counter;
  counter.VisitProgram(program);
  return counter.count;
}

int TotalHeaderBits(const Program& program) {
  int bits = 0;
  for (const TypePtr& type : program.type_decls()) {
    if (!type->IsHeader()) {
      continue;
    }
    for (const Type::Field& field : type->fields()) {
      bits += static_cast<int>(field.type->width());
    }
  }
  return bits;
}

bool HasWideMultiply(const Program& program) {
  class Finder : public Inspector {
   public:
    bool found = false;

   protected:
    void OnExpr(const Expr& expr) override {
      if (expr.kind() != ExprKind::kBinary) {
        return;
      }
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      found |= binary.op() == BinaryOp::kMul && binary.type() != nullptr &&
               binary.type()->IsBit() && binary.type()->width() > 32;
    }
  };
  Finder finder;
  finder.VisitProgram(program);
  return finder.found;
}

}  // namespace gauntlet
