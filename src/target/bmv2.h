#ifndef SRC_TARGET_BMV2_H_
#define SRC_TARGET_BMV2_H_

#include <memory>
#include <utility>

#include "src/passes/bugs.h"
#include "src/target/concrete.h"
#include "src/target/stf.h"

namespace gauntlet {

// The compiled artifact the BMv2 (open-source reference) back end produces:
// the lowered program plus whatever behavioral quirks the compiler's seeded
// faults baked in. From the harness's point of view this is a black box
// that eats packets — the only interface the paper's technique 3 relies on.
class Bmv2Executable {
 public:
  PacketResult Run(const BitString& packet, const TableConfig& tables) const {
    return interpreter_.RunPacket(packet, tables);
  }

  const Program& program() const { return *program_; }

 private:
  friend class Bmv2Compiler;
  Bmv2Executable(std::shared_ptr<const Program> program, TargetQuirks quirks)
      : program_(std::move(program)), interpreter_(*program_, quirks) {}

  std::shared_ptr<const Program> program_;
  // One execution engine per compiled artifact, reused across every Run —
  // batch packet replay pays interpreter setup once per program (the
  // ROADMAP "scale knobs" item). References *program_, whose heap address
  // is stable across copies/moves of the executable.
  ConcreteInterpreter interpreter_;
};

// The BMv2 compiler: shared front/mid-end lowering (with whatever seeded
// faults `bugs` enables), then the BMv2-specific back end, which honors the
// seeded BMv2 semantic faults and crashes on residual function calls (the
// section 7.2 snowball site).
class Bmv2Compiler {
 public:
  explicit Bmv2Compiler(BugConfig bugs) : bugs_(std::move(bugs)) {}

  Bmv2Executable Compile(const Program& program) const;

 private:
  BugConfig bugs_;
};

}  // namespace gauntlet

#endif  // SRC_TARGET_BMV2_H_
