#ifndef SRC_TARGET_BMV2_H_
#define SRC_TARGET_BMV2_H_

#include <memory>

#include "src/target/target.h"

namespace gauntlet {

// The BMv2 (open-source reference) back end: shared front/mid-end lowering
// (with whatever seeded faults `bugs` enables), then the BMv2-specific
// stage, which bakes the seeded BMv2 semantic faults into the artifact's
// quirks and crashes on residual function calls (the section 7.2 snowball
// site). Registered as "bmv2".
class Bmv2Target : public Target {
 public:
  const char* name() const override { return "bmv2"; }
  const char* component() const override { return "Bmv2BackEnd"; }
  BugLocation location() const override { return BugLocation::kBackEndBmv2; }

  std::unique_ptr<Executable> Compile(const Program& program,
                                      const BugConfig& bugs) const override;
};

}  // namespace gauntlet

#endif  // SRC_TARGET_BMV2_H_
