#include "src/target/concrete.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace gauntlet {

TableSemantics TableSemanticsFromQuirks(const TargetQuirks& quirks) {
  TableSemantics semantics;
  if (quirks.match_last_entry) {
    semantics.order = MatchOrder::kLastInstalled;
  }
  if (quirks.swap_map_key_bytes) {
    semantics.key_transform = KeyTransform::kReverseBytes;
  }
  if (quirks.swap_action_data_bytes) {
    semantics.data_transform = DataTransform::kReverseBytes;
  }
  // The miss rewrites are mutually exclusive in the catalogue (one per back
  // end); when several are seeded at once the most destructive wins, which
  // matches how the old branch chain resolved them.
  if (quirks.miss_drops_packet) {
    semantics.miss = MissBehavior::kDropPacket;
  } else if (quirks.miss_runs_first_action) {
    semantics.miss = MissBehavior::kRunFirstActionZeroData;
  } else if (quirks.skip_default_action) {
    semantics.miss = MissBehavior::kNoAction;
  }
  return semantics;
}

namespace {

// Matches SymbolicInterpreter::kMaxParserDepth so the concrete and symbolic
// sides reject the same looping parsers.
constexpr int kMaxParserDepth = 32;

// Internal control flow: an extract ran past the end of the packet. Real
// targets raise PacketTooShort and drop; this never escapes RunPacket.
struct PacketTooShortSignal {};

// A concrete scalar: a bit<N> value or a bool.
struct Datum {
  bool is_bool = false;
  bool b = false;
  BitValue bits;
};

Datum BitDatum(BitValue value) {
  Datum datum;
  datum.bits = value;
  return datum;
}

Datum BoolDatum(bool value) {
  Datum datum;
  datum.is_bool = true;
  datum.b = value;
  return datum;
}

// Concrete counterpart of SymValue: a scalar, or a struct-like tree of
// named fields; headers carry a validity bit.
struct CValue {
  TypePtr type;
  Datum scalar;                                          // bit/bool leaves
  bool valid = false;                                    // headers only
  std::vector<std::pair<std::string, CValue>> fields;    // struct/header

  bool IsScalar() const { return type->IsBit() || type->IsBool(); }

  CValue* FindField(const std::string& name) {
    for (auto& [field_name, value] : fields) {
      if (field_name == name) {
        return &value;
      }
    }
    return nullptr;
  }
};

// An all-zero value of `type`: zero scalars, invalid headers. This is both
// the undefined value (undef variables are pinned to zero, section 6.2) and
// the target-initialized state of unglued block inputs.
CValue ZeroValue(const Program& program, const Type& type) {
  CValue value;
  if (type.IsBit()) {
    value.type = Type::Bit(type.width());
    value.scalar = BitDatum(BitValue(type.width(), 0));
    return value;
  }
  if (type.IsBool()) {
    value.type = Type::Bool();
    value.scalar = BoolDatum(false);
    return value;
  }
  value.type = program.FindType(type.name());
  GAUNTLET_BUG_CHECK(value.type != nullptr, "unknown struct type in concrete ZeroValue");
  for (const Type::Field& field : type.fields()) {
    value.fields.emplace_back(field.name, ZeroValue(program, *field.type));
  }
  value.valid = false;
  return value;
}

// Builds a block input value from upstream leaf values, mirroring the
// symbolic glue: each leaf path that the upstream produced supplies the
// value; everything else is target-initialized to zero.
CValue ValueFromLeaves(const Program& program, const Type& type, const std::string& path,
                       const std::map<std::string, BitValue>& leaves) {
  CValue value;
  if (type.IsBit() || type.IsBool()) {
    auto it = leaves.find(path);
    const uint64_t bits = it != leaves.end() ? it->second.bits() : 0;
    if (type.IsBit()) {
      value.type = Type::Bit(type.width());
      value.scalar = BitDatum(BitValue(type.width(), bits));
    } else {
      value.type = Type::Bool();
      value.scalar = BoolDatum(bits != 0);
    }
    return value;
  }
  value.type = program.FindType(type.name());
  GAUNTLET_BUG_CHECK(value.type != nullptr, "unknown struct type in concrete input binding");
  for (const Type::Field& field : type.fields()) {
    value.fields.emplace_back(field.name,
                              ValueFromLeaves(program, *field.type, path + "." + field.name, leaves));
  }
  if (type.IsHeader()) {
    auto it = leaves.find(path + ".$valid");
    value.valid = it != leaves.end() && it->second.bits() != 0;
  }
  return value;
}

// Flattens a value into named scalar leaves, mirroring the symbolic
// FlattenOutput: headers contribute a "path.$valid" leaf, and fields under
// any invalid header are canonicalized to zero.
void FlattenLeaves(const CValue& value, const std::string& path, bool enclosing_invalid,
                   std::map<std::string, BitValue>& out) {
  if (value.IsScalar()) {
    if (value.scalar.is_bool) {
      out[path] = BitValue(1, !enclosing_invalid && value.scalar.b ? 1 : 0);
    } else if (enclosing_invalid) {
      out[path] = BitValue(value.scalar.bits.width(), 0);
    } else {
      out[path] = value.scalar.bits;
    }
    return;
  }
  bool invalid = enclosing_invalid;
  if (value.type->IsHeader()) {
    out[path + ".$valid"] = BitValue(1, value.valid ? 1 : 0);
    invalid = invalid || !value.valid;
  }
  for (const auto& [name, field] : value.fields) {
    FlattenLeaves(field, path + "." + name, invalid, out);
  }
}

// Lexically scoped concrete environment (the concrete SymEnv).
class Env {
 public:
  void PushLayer() { layers_.emplace_back(); }
  void PopLayer() { layers_.pop_back(); }

  void Bind(const std::string& name, CValue value) {
    GAUNTLET_BUG_CHECK(!layers_.empty(), "concrete Bind with no scope layer");
    layers_.back()[name] = std::move(value);
  }

  CValue* Find(const std::string& name) {
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        return &found->second;
      }
    }
    return nullptr;
  }

 private:
  std::vector<std::map<std::string, CValue>> layers_;
};

// Executes one package block (a parser or a control) concretely.
class BlockExec {
 public:
  BlockExec(const Program& program, const TargetQuirks& quirks,
            const std::map<const TableDecl*, TableModel>& models, const TableConfig& tables)
      : program_(program),
        quirks_(quirks),
        table_semantics_(TableSemanticsFromQuirks(quirks)),
        models_(models),
        tables_(tables) {}

  Env& env() { return env_; }
  bool exited() const { return exited_; }
  bool rejected() const { return rejected_; }
  bool dropped() const { return dropped_; }
  const BitString& emitted() const { return emitted_; }

  // Runs a control; its parameters must already be bound in an env layer.
  void RunControl(const ControlDecl& control, bool is_deparser) {
    control_ = &control;
    in_deparser_ = is_deparser;
    frames_.push_back(Frame{});
    env_.PushLayer();  // apply-body scope
    ExecBlock(control.apply());
    env_.PopLayer();
    frames_.pop_back();
  }

  // Runs the parser state machine on `packet`; parameters must already be
  // bound. Throws PacketTooShortSignal when an extract runs out of bits.
  void RunParser(const ParserDecl& parser, const BitString& packet) {
    in_parser_ = true;
    packet_ = &packet;
    frames_.push_back(Frame{});
    std::string state_name = "start";
    int steps = 0;
    while (state_name != "accept" && state_name != "reject") {
      if (++steps > kMaxParserDepth) {
        throw UnsupportedError("parser state loop exceeds the unrolling bound");
      }
      const ParserState* state = parser.FindState(state_name);
      GAUNTLET_BUG_CHECK(state != nullptr, "unknown parser state at concrete execution time");
      env_.PushLayer();  // state-local scope
      for (const StmtPtr& stmt : state->statements) {
        ExecStmt(*stmt);
      }
      std::string next;
      if (state->select_expr == nullptr) {
        GAUNTLET_BUG_CHECK(state->cases.size() == 1, "malformed unconditional transition");
        next = state->cases[0].next_state;
      } else {
        const Datum selector = Eval(*state->select_expr);
        for (const SelectCase& select_case : state->cases) {
          if (select_case.value == nullptr) {
            next = select_case.next_state;
            break;
          }
          const BitValue case_value =
              static_cast<const ConstantExpr&>(*select_case.value).value();
          if (selector.bits.Eq(case_value)) {
            next = select_case.next_state;
            break;
          }
        }
        if (next.empty()) {
          next = "reject";  // no case matched and no default: P4 rejects
        }
      }
      env_.PopLayer();
      state_name = next;
    }
    rejected_ = state_name == "reject";
    frames_.pop_back();
  }

 private:
  struct Frame {
    bool returned = false;
    // The value of the executed `return` (value functions always return on
    // every path — the type checker enforces it); zero Datum otherwise.
    Datum ret;
  };

  bool Live() const { return !exited_ && !dropped_ && !frames_.back().returned; }

  // --- l-values ---

  CValue* ResolveValue(const Expr& expr) {
    switch (expr.kind()) {
      case ExprKind::kPath: {
        CValue* value = env_.Find(static_cast<const PathExpr&>(expr).name());
        GAUNTLET_BUG_CHECK(value != nullptr,
                           "unbound variable '" + static_cast<const PathExpr&>(expr).name() +
                               "' at concrete execution time");
        return value;
      }
      case ExprKind::kMember: {
        const auto& member = static_cast<const MemberExpr&>(expr);
        CValue* base = ResolveValue(member.base());
        CValue* field = base->FindField(member.member());
        GAUNTLET_BUG_CHECK(field != nullptr, "missing field at concrete execution time");
        return field;
      }
      default:
        GAUNTLET_BUG_CHECK(false, "not a resolvable l-value shape");
        return nullptr;
    }
  }

  void WriteLValue(const Expr& target, const Datum& value) {
    if (target.kind() == ExprKind::kSlice) {
      const auto& slice = static_cast<const SliceExpr&>(target);
      CValue* leaf = ResolveValue(slice.base());
      GAUNTLET_BUG_CHECK(leaf->IsScalar() && !leaf->scalar.is_bool,
                         "slice assignment to non-bit l-value");
      leaf->scalar.bits = leaf->scalar.bits.SetSlice(slice.hi(), slice.lo(), value.bits);
      return;
    }
    CValue* leaf = ResolveValue(target);
    GAUNTLET_BUG_CHECK(leaf->IsScalar(), "assignment to non-scalar l-value");
    leaf->scalar = value;
  }

  // --- expressions ---

  Datum Eval(const Expr& expr) {
    switch (expr.kind()) {
      case ExprKind::kConstant:
        return BitDatum(static_cast<const ConstantExpr&>(expr).value());
      case ExprKind::kBoolConst:
        return BoolDatum(static_cast<const BoolConstExpr&>(expr).value());
      case ExprKind::kPath:
      case ExprKind::kMember: {
        const CValue* value = ResolveValue(expr);
        GAUNTLET_BUG_CHECK(value->IsScalar(), "reading non-scalar value");
        return value->scalar;
      }
      case ExprKind::kSlice: {
        const auto& slice = static_cast<const SliceExpr&>(expr);
        return BitDatum(Eval(slice.base()).bits.Slice(slice.hi(), slice.lo()));
      }
      case ExprKind::kUnary: {
        const auto& unary = static_cast<const UnaryExpr&>(expr);
        const Datum operand = Eval(unary.operand());
        switch (unary.op()) {
          case UnaryOp::kComplement:
            return BitDatum(operand.bits.Not());
          case UnaryOp::kNegate:
            return BitDatum(BitValue(operand.bits.width(), 0).Sub(operand.bits));
          case UnaryOp::kLogicalNot:
            return BoolDatum(!operand.b);
        }
        break;
      }
      case ExprKind::kBinary:
        return EvalBinary(static_cast<const BinaryExpr&>(expr));
      case ExprKind::kMux: {
        // The symbolic interpreter evaluates all three operands eagerly
        // (the fragment keeps effectful calls out of pure positions), so
        // the concrete side does too.
        const auto& mux = static_cast<const MuxExpr&>(expr);
        const Datum cond = Eval(mux.cond());
        const Datum then_value = Eval(mux.then_expr());
        const Datum else_value = Eval(mux.else_expr());
        return cond.b ? then_value : else_value;
      }
      case ExprKind::kCast: {
        const auto& cast = static_cast<const CastExpr&>(expr);
        const Datum operand = Eval(cast.operand());
        const uint64_t bits = operand.is_bool ? (operand.b ? 1 : 0) : operand.bits.bits();
        return BitDatum(BitValue(cast.target()->width(), bits));
      }
      case ExprKind::kCall: {
        const auto& call = static_cast<const CallExpr&>(expr);
        if (call.call_kind() == CallKind::kIsValid) {
          const CValue* header = ResolveValue(*call.receiver());
          GAUNTLET_BUG_CHECK(header->type->IsHeader(), "isValid on non-header");
          return BoolDatum(header->valid);
        }
        GAUNTLET_BUG_CHECK(call.call_kind() == CallKind::kFunction,
                           "unexpected call kind in expression");
        const FunctionDecl* function = program_.FindFunction(call.callee());
        GAUNTLET_BUG_CHECK(function != nullptr, "unknown function at concrete execution time");
        return ExecCall(function->params(), function->body(), call.args());
      }
    }
    GAUNTLET_BUG_CHECK(false, "unhandled expression in concrete interpreter");
    return Datum{};
  }

  Datum EvalBinary(const BinaryExpr& binary) {
    // Left-to-right, eager — exactly the symbolic evaluation order, so
    // side effects of expression-position calls line up.
    const Datum left = Eval(binary.left());
    const Datum right = Eval(binary.right());
    switch (binary.op()) {
      case BinaryOp::kAdd:
        return BitDatum(NarrowAlu(left.bits.Add(right.bits), left.bits, right.bits,
                                  BinaryOp::kAdd));
      case BinaryOp::kSub:
        return BitDatum(NarrowAlu(left.bits.Sub(right.bits), left.bits, right.bits,
                                  BinaryOp::kSub));
      case BinaryOp::kMul:
        return BitDatum(NarrowAlu(left.bits.Mul(right.bits), left.bits, right.bits,
                                  BinaryOp::kMul));
      case BinaryOp::kBitAnd:
        return BitDatum(left.bits.And(right.bits));
      case BinaryOp::kBitOr:
        return BitDatum(left.bits.Or(right.bits));
      case BinaryOp::kBitXor:
        return BitDatum(left.bits.Xor(right.bits));
      case BinaryOp::kShl:
        return BitDatum(left.bits.Shl(right.bits));
      case BinaryOp::kShr:
        return BitDatum(left.bits.Shr(right.bits));
      case BinaryOp::kConcat:
        return BitDatum(left.bits.Concat(right.bits));
      case BinaryOp::kEq:
        return BoolDatum(left.is_bool ? left.b == right.b : left.bits.Eq(right.bits));
      case BinaryOp::kNe:
        return BoolDatum(left.is_bool ? left.b != right.b : !left.bits.Eq(right.bits));
      case BinaryOp::kLt:
        return BoolDatum(left.bits.Lt(right.bits));
      case BinaryOp::kLe:
        return BoolDatum(left.bits.Le(right.bits));
      case BinaryOp::kGt:
        return BoolDatum(right.bits.Lt(left.bits));
      case BinaryOp::kGe:
        return BoolDatum(right.bits.Le(left.bits));
      case BinaryOp::kLogicalAnd:
        return BoolDatum(left.b && right.b);
      case BinaryOp::kLogicalOr:
        return BoolDatum(left.b || right.b);
    }
    GAUNTLET_BUG_CHECK(false, "unhandled binary op in concrete interpreter");
    return Datum{};
  }

  // The kTofinoPhvNarrowWide fault: arithmetic wider than a 32-bit PHV
  // container is computed modulo 2^32 and zero-extended back.
  BitValue NarrowAlu(BitValue correct, const BitValue& left, const BitValue& right,
                     BinaryOp op) const {
    const uint32_t width = correct.width();
    if (!quirks_.narrow_alu_containers || width <= 32) {
      return correct;
    }
    const BitValue left32 = left.Cast(32);
    const BitValue right32 = right.Cast(32);
    BitValue narrow(1, 0);
    switch (op) {
      case BinaryOp::kAdd:
        narrow = left32.Add(right32);
        break;
      case BinaryOp::kSub:
        narrow = left32.Sub(right32);
        break;
      case BinaryOp::kMul:
        narrow = left32.Mul(right32);
        break;
      default:
        GAUNTLET_BUG_CHECK(false, "NarrowAlu on a non-arithmetic op");
    }
    return narrow.Cast(width);
  }

  // --- calls: copy-in/copy-out (P4-16 section 6.7) ---

  Datum ExecCall(const std::vector<Param>& params, const BlockStmt& body,
                 const std::vector<ExprPtr>& args) {
    struct CopyOut {
      const Expr* lvalue;
      std::string param_name;
    };
    std::vector<CopyOut> copy_outs;
    std::vector<std::pair<std::string, CValue>> bindings;
    for (size_t i = 0; i < params.size(); ++i) {
      const Param& param = params[i];
      CValue bound;
      if (param.direction == Direction::kOut) {
        bound = ZeroValue(program_, *param.type);  // undefined = zero
      } else {
        bound.type = param.type;
        bound.scalar = Eval(*args[i]);
      }
      if (param.direction == Direction::kOut || param.direction == Direction::kInOut) {
        copy_outs.push_back(CopyOut{args[i].get(), param.name});
      }
      bindings.emplace_back(param.name, std::move(bound));
    }
    env_.PushLayer();
    for (auto& [name, value] : bindings) {
      env_.Bind(name, std::move(value));
    }
    frames_.push_back(Frame{});
    ExecBlock(body);
    const Datum ret = frames_.back().ret;
    frames_.pop_back();
    // Copy-out happens unconditionally — on return AND on exit (the
    // specification interpretation that resolved the Fig. 5f ambiguity).
    std::vector<std::pair<const Expr*, Datum>> writebacks;
    writebacks.reserve(copy_outs.size());
    for (const CopyOut& copy_out : copy_outs) {
      const CValue* param_value = env_.Find(copy_out.param_name);
      GAUNTLET_BUG_CHECK(param_value != nullptr && param_value->IsScalar(),
                         "copy-out of non-scalar parameter");
      writebacks.emplace_back(copy_out.lvalue, param_value->scalar);
    }
    env_.PopLayer();
    for (const auto& [lvalue, value] : writebacks) {
      WriteLValue(*lvalue, value);
    }
    return ret;
  }

  // Runs an action whose parameters are pre-bound (table-invoked actions).
  void ExecBoundAction(const ActionDecl& action,
                       std::vector<std::pair<std::string, CValue>> bindings) {
    env_.PushLayer();
    for (auto& [name, value] : bindings) {
      env_.Bind(name, std::move(value));
    }
    frames_.push_back(Frame{});
    ExecBlock(action.body());
    frames_.pop_back();
    env_.PopLayer();
  }

  // --- tables (resolved through the shared model layer, src/table/) ---

  const ActionDecl* FindAction(const std::string& name) const {
    GAUNTLET_BUG_CHECK(control_ != nullptr, "table applied outside a control");
    const Decl* local = control_->FindLocal(name);
    if (local != nullptr && local->kind() == DeclKind::kAction) {
      return static_cast<const ActionDecl*>(local);
    }
    return nullptr;
  }

  void ApplyTable(const TableDecl& table) {
    GAUNTLET_BUG_CHECK(control_ != nullptr, "table applied outside a control");
    const auto model_it = models_.find(&table);
    GAUNTLET_BUG_CHECK(model_it != models_.end(), "table missing from the prebuilt models");
    const TableModel& model = model_it->second;
    std::vector<BitValue> lookup_key;
    lookup_key.reserve(table.keys().size());
    for (const TableKey& key : table.keys()) {
      lookup_key.push_back(Eval(*key.expr).bits);
    }
    static const std::vector<TableEntry> kNoEntries;
    const auto entries_it = tables_.find(table.name());
    const std::vector<TableEntry>& entries =
        entries_it != tables_.end() ? entries_it->second : kNoEntries;

    const TableModel::Outcome outcome =
        model.Resolve(entries, lookup_key, table_semantics_);
    switch (outcome.kind) {
      case TableModel::Outcome::Kind::kRunAction:
        ExecBoundAction(*outcome.action, BindActionData(*outcome.action, outcome.action_data));
        return;
      case TableModel::Outcome::Kind::kDropPacket:
        // The map-miss rewrite: the program aborts (XDP_ABORTED) and the
        // packet is dropped.
        dropped_ = true;
        return;
      case TableModel::Outcome::Kind::kNoAction:
        return;  // the skipped-default rewrite: the miss does nothing
      case TableModel::Outcome::Kind::kRunDefaultAction:
        break;
    }
    // Default action with its compile-time argument expressions, which only
    // the executor can evaluate (they may reference control state).
    const ActionDecl& default_action = model.default_action();
    std::vector<std::pair<std::string, CValue>> bindings;
    for (size_t i = 0; i < default_action.params().size(); ++i) {
      CValue value;
      value.type = default_action.params()[i].type;
      value.scalar = Eval(*table.default_args()[i]);
      bindings.emplace_back(default_action.params()[i].name, std::move(value));
    }
    ExecBoundAction(default_action, std::move(bindings));
  }

  // Binds control-plane action data (already transformed and zero-padded by
  // the model's Resolve) to an action's parameters.
  std::vector<std::pair<std::string, CValue>> BindActionData(
      const ActionDecl& action, const std::vector<BitValue>& data) {
    std::vector<std::pair<std::string, CValue>> bindings;
    for (size_t i = 0; i < action.params().size(); ++i) {
      const Param& param = action.params()[i];
      CValue value;
      value.type = param.type;
      const uint64_t bits = i < data.size() ? data[i].bits() : 0;
      if (param.type->IsBool()) {
        value.scalar = BoolDatum(bits != 0);
      } else {
        value.scalar = BitDatum(BitValue(param.type->width(), bits));
      }
      bindings.emplace_back(param.name, std::move(value));
    }
    return bindings;
  }

  // --- statements ---

  void ExecBlock(const BlockStmt& block) {
    for (const StmtPtr& stmt : block.statements()) {
      ExecStmt(*stmt);
    }
  }

  void ExecStmt(const Stmt& stmt) {
    if (!Live()) {
      return;
    }
    switch (stmt.kind()) {
      case StmtKind::kBlock:
        ExecBlock(static_cast<const BlockStmt&>(stmt));
        return;
      case StmtKind::kEmpty:
        return;
      case StmtKind::kAssign: {
        const auto& assign = static_cast<const AssignStmt&>(stmt);
        const Datum value = Eval(assign.value());
        WriteLValue(assign.target(), value);
        return;
      }
      case StmtKind::kVarDecl: {
        const auto& var_decl = static_cast<const VarDeclStmt&>(stmt);
        CValue value;
        value.type = var_decl.var_type();
        if (var_decl.init() != nullptr) {
          value.scalar = Eval(*var_decl.init());
        } else if (var_decl.var_type()->IsBool()) {
          value.scalar = BoolDatum(false);  // undefined = zero
        } else {
          value.scalar = BitDatum(BitValue(var_decl.var_type()->width(), 0));
        }
        env_.Bind(var_decl.name(), std::move(value));
        return;
      }
      case StmtKind::kIf: {
        const auto& if_stmt = static_cast<const IfStmt&>(stmt);
        if (Eval(if_stmt.cond()).b) {
          ExecStmt(if_stmt.then_branch());
        } else if (if_stmt.else_branch() != nullptr) {
          ExecStmt(*if_stmt.else_branch());
        }
        return;
      }
      case StmtKind::kExit:
        exited_ = true;
        return;
      case StmtKind::kReturn: {
        const auto& return_stmt = static_cast<const ReturnStmt&>(stmt);
        Frame& frame = frames_.back();
        if (return_stmt.value() != nullptr) {
          frame.ret = Eval(*return_stmt.value());
        }
        frame.returned = true;
        return;
      }
      case StmtKind::kCall:
        ExecCallStmt(static_cast<const CallStmt&>(stmt).call());
        return;
    }
  }

  void ExecCallStmt(const CallExpr& call) {
    switch (call.call_kind()) {
      case CallKind::kTableApply: {
        GAUNTLET_BUG_CHECK(control_ != nullptr, "table applied outside a control");
        const Decl* local = control_->FindLocal(call.callee());
        GAUNTLET_BUG_CHECK(local != nullptr && local->kind() == DeclKind::kTable,
                           "unknown table at concrete execution time");
        ApplyTable(static_cast<const TableDecl&>(*local));
        return;
      }
      case CallKind::kSetValid: {
        CValue* header = ResolveValue(*call.receiver());
        if (!header->valid) {
          // Newly validated headers have arbitrary field contents — fresh
          // unknowns, which concretely read as zero.
          for (auto& [name, field] : header->fields) {
            (void)name;
            if (field.scalar.is_bool || field.type->IsBool()) {
              field.scalar = BoolDatum(false);
            } else {
              field.scalar = BitDatum(BitValue(field.type->width(), 0));
            }
          }
          header->valid = true;
        }
        return;
      }
      case CallKind::kSetInvalid: {
        CValue* header = ResolveValue(*call.receiver());
        header->valid = false;
        return;
      }
      case CallKind::kEmit: {
        GAUNTLET_BUG_CHECK(in_deparser_, "emit outside deparser at concrete execution time");
        const CValue* header = ResolveValue(*call.receiver());
        if (header->valid || quirks_.emit_ignores_validity) {
          for (const auto& [name, field] : header->fields) {
            (void)name;
            emitted_.AppendBits(field.scalar.is_bool ? BitValue(1, field.scalar.b ? 1 : 0)
                                                     : field.scalar.bits);
          }
        }
        return;
      }
      case CallKind::kExtract: {
        GAUNTLET_BUG_CHECK(in_parser_, "extract outside a parser at concrete execution time");
        CValue* header = ResolveValue(*call.receiver());
        // The seeded eBPF fault walks the field list backwards, so the
        // first bits on the wire land in the *last* declared field; the
        // total bit consumption is unchanged, only the assignment order.
        std::vector<CValue*> order;
        order.reserve(header->fields.size());
        for (auto& [name, field] : header->fields) {
          (void)name;
          order.push_back(&field);
        }
        if (quirks_.reverse_extract_field_order) {
          std::reverse(order.begin(), order.end());
        }
        for (CValue* field : order) {
          const uint32_t width = field->type->width();
          const std::optional<BitValue> bits = packet_->ReadBits(parse_offset_, width);
          if (!bits.has_value()) {
            throw PacketTooShortSignal{};
          }
          field->scalar = BitDatum(*bits);
          parse_offset_ += width;
        }
        header->valid = true;
        return;
      }
      case CallKind::kAction: {
        const ActionDecl* action = FindAction(call.callee());
        GAUNTLET_BUG_CHECK(action != nullptr, "unknown action at concrete execution time");
        ExecCall(action->params(), action->body(), call.args());
        return;
      }
      case CallKind::kFunction: {
        const FunctionDecl* function = program_.FindFunction(call.callee());
        GAUNTLET_BUG_CHECK(function != nullptr, "unknown function at concrete execution time");
        ExecCall(function->params(), function->body(), call.args());
        return;
      }
      case CallKind::kIsValid:
        GAUNTLET_BUG_CHECK(false, "unexpected call kind as statement");
    }
  }

  const Program& program_;
  const TargetQuirks& quirks_;
  const TableSemantics table_semantics_;
  const std::map<const TableDecl*, TableModel>& models_;
  const TableConfig& tables_;
  Env env_;
  std::vector<Frame> frames_;
  bool exited_ = false;
  bool rejected_ = false;
  bool dropped_ = false;
  bool in_deparser_ = false;
  bool in_parser_ = false;
  const ControlDecl* control_ = nullptr;
  const BitString* packet_ = nullptr;
  size_t parse_offset_ = 0;
  BitString emitted_;
};

// Flattens the inout/out parameters of a finished block into canonicalized
// leaves — the concrete image of CollectParamOutputs + FlattenOutput.
std::map<std::string, BitValue> CollectParamLeaves(const std::vector<Param>& params,
                                                   BlockExec& exec) {
  std::map<std::string, BitValue> leaves;
  for (const Param& param : params) {
    if (param.direction == Direction::kInOut || param.direction == Direction::kOut) {
      const CValue* value = exec.env().Find(param.name);
      GAUNTLET_BUG_CHECK(value != nullptr, "lost block parameter");
      FlattenLeaves(*value, param.name, /*enclosing_invalid=*/false, leaves);
    }
  }
  return leaves;
}

// Rejects a TableConfig that names tables the program does not declare, or
// installs entries on keyless tables (P4 forbids both; a typo'd table name
// would otherwise make every lookup a silent miss).
void ValidateTableConfig(const Program& program, const TableConfig& tables) {
  std::map<std::string, const TableDecl*> declared;
  for (const DeclPtr& decl : program.decls()) {
    if (decl->kind() != DeclKind::kControl) {
      continue;
    }
    for (const DeclPtr& local : static_cast<const ControlDecl&>(*decl).locals()) {
      if (local->kind() == DeclKind::kTable) {
        declared[local->name()] = static_cast<const TableDecl*>(local.get());
      }
    }
  }
  for (const auto& [name, entries] : tables) {
    auto it = declared.find(name);
    if (it == declared.end()) {
      throw CompileError("table config names '" + name +
                         "', but the program declares no such table");
    }
    if (!entries.empty() && it->second->keys().empty()) {
      throw CompileError("table '" + name +
                         "' is keyless; entries cannot be installed on it");
    }
  }
}

// Binds a control's parameters from upstream leaves (out params start
// undefined = zero, like the symbolic MakeUndefValue binding).
void BindControlParams(const Program& program, BlockExec& exec,
                       const std::vector<Param>& params,
                       const std::map<std::string, BitValue>& leaves) {
  exec.env().PushLayer();
  for (const Param& param : params) {
    if (param.direction == Direction::kOut) {
      exec.env().Bind(param.name, ZeroValue(program, *param.type));
    } else {
      exec.env().Bind(param.name, ValueFromLeaves(program, *param.type, param.name, leaves));
    }
  }
}

}  // namespace

ConcreteInterpreter::ConcreteInterpreter(const Program& program, const TargetQuirks& quirks)
    : program_(program), quirks_(quirks) {
  for (const DeclPtr& decl : program.decls()) {
    if (decl->kind() != DeclKind::kControl) {
      continue;
    }
    const auto& control = static_cast<const ControlDecl&>(*decl);
    for (const DeclPtr& local : control.locals()) {
      if (local->kind() == DeclKind::kTable) {
        const auto* table = static_cast<const TableDecl*>(local.get());
        models_.emplace(table, TableModel(control, *table));
      }
    }
  }
}

PacketResult ConcreteInterpreter::RunPacket(const BitString& packet,
                                            const TableConfig& tables) const {
  const PackageBlock* parser_block = program_.FindBlock(BlockRole::kParser);
  const PackageBlock* ingress_block = program_.FindBlock(BlockRole::kIngress);
  const PackageBlock* egress_block = program_.FindBlock(BlockRole::kEgress);
  const PackageBlock* deparser_block = program_.FindBlock(BlockRole::kDeparser);
  if (parser_block == nullptr || ingress_block == nullptr || deparser_block == nullptr) {
    throw UnsupportedError(
        "concrete packet execution requires parser, ingress and deparser blocks");
  }
  const ParserDecl* parser = program_.FindParser(parser_block->decl_name);
  GAUNTLET_BUG_CHECK(parser != nullptr, "parser binding is not a parser");
  ValidateTableConfig(program_, tables);

  PacketResult result;

  // --- parser ---
  std::map<std::string, BitValue> leaves;
  {
    BlockExec exec(program_, quirks_, models_, tables);
    exec.env().PushLayer();
    // Parser parameters start with invalid headers and undefined (= zero)
    // scalars.
    for (const Param& param : parser->params()) {
      exec.env().Bind(param.name, ZeroValue(program_, *param.type));
    }
    try {
      exec.RunParser(*parser, packet);
    } catch (const PacketTooShortSignal&) {
      result.dropped = true;
      return result;
    }
    if (exec.rejected()) {
      result.dropped = true;
      return result;
    }
    leaves = CollectParamLeaves(parser->params(), exec);
  }

  // --- match-action controls ---
  for (const PackageBlock* block : {ingress_block, egress_block}) {
    if (block == nullptr) {
      continue;
    }
    const ControlDecl* control = program_.FindControl(block->decl_name);
    GAUNTLET_BUG_CHECK(control != nullptr, "control binding is not a control");
    BlockExec exec(program_, quirks_, models_, tables);
    BindControlParams(program_, exec, control->params(), leaves);
    exec.RunControl(*control, /*is_deparser=*/false);
    if (exec.dropped()) {
      // The miss-drops-packet quirk aborted the program mid-control; no
      // deparsing happens for an aborted packet.
      result.dropped = true;
      return result;
    }
    leaves = CollectParamLeaves(control->params(), exec);
  }

  // --- deparser ---
  {
    const ControlDecl* deparser = program_.FindControl(deparser_block->decl_name);
    GAUNTLET_BUG_CHECK(deparser != nullptr, "deparser binding is not a control");
    BlockExec exec(program_, quirks_, models_, tables);
    BindControlParams(program_, exec, deparser->params(), leaves);
    exec.RunControl(*deparser, /*is_deparser=*/true);
    result.output = exec.emitted();
  }
  return result;
}

std::map<std::string, BitValue> ConcreteInterpreter::RunIngressOnScalars(
    const std::map<std::string, BitValue>& inputs, const TableConfig& tables) const {
  const PackageBlock* ingress_block = program_.FindBlock(BlockRole::kIngress);
  GAUNTLET_BUG_CHECK(ingress_block != nullptr, "package binds no ingress block");
  const ControlDecl* control = program_.FindControl(ingress_block->decl_name);
  GAUNTLET_BUG_CHECK(control != nullptr, "ingress binding is not a control");
  ValidateTableConfig(program_, tables);

  BlockExec exec(program_, quirks_, models_, tables);
  BindControlParams(program_, exec, control->params(), inputs);
  exec.RunControl(*control, /*is_deparser=*/false);
  std::map<std::string, BitValue> outputs = CollectParamLeaves(control->params(), exec);
  outputs["$exited"] = BitValue(1, exec.exited() ? 1 : 0);
  return outputs;
}

}  // namespace gauntlet
