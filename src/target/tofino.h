#ifndef SRC_TARGET_TOFINO_H_
#define SRC_TARGET_TOFINO_H_

#include <memory>
#include <utility>

#include "src/passes/bugs.h"
#include "src/target/concrete.h"
#include "src/target/stf.h"

namespace gauntlet {

// The proprietary-back-end artifact (paper section 6.1): its intermediate
// representations are closed, so translation validation cannot look inside
// — packet replay through Run is the only available oracle.
class TofinoExecutable {
 public:
  PacketResult Run(const BitString& packet, const TableConfig& tables) const {
    return interpreter_.RunPacket(packet, tables);
  }

  const Program& program() const { return *program_; }

 private:
  friend class TofinoCompiler;
  TofinoExecutable(std::shared_ptr<const Program> program, TargetQuirks quirks)
      : program_(std::move(program)), interpreter_(*program_, quirks) {}

  std::shared_ptr<const Program> program_;
  // One execution engine per compiled artifact, reused across every Run
  // (see Bmv2Executable). References *program_, whose heap address is
  // stable across copies/moves of the executable.
  ConcreteInterpreter interpreter_;
};

// The Tofino compiler: the same shared lowering, then a chip-flavoured back
// end with a PHV/stage resource model. Its seeded crash faults abort
// compilation ("PHV allocation" / "stage allocation" assertions); its
// seeded semantic faults silently change the compiled artifact's behavior —
// exactly the split in the fault catalogue's Tofino section.
class TofinoCompiler {
 public:
  explicit TofinoCompiler(BugConfig bugs) : bugs_(std::move(bugs)) {}

  TofinoExecutable Compile(const Program& program) const;

 private:
  BugConfig bugs_;
};

}  // namespace gauntlet

#endif  // SRC_TARGET_TOFINO_H_
