#ifndef SRC_TARGET_TOFINO_H_
#define SRC_TARGET_TOFINO_H_

#include <memory>
#include <vector>

#include "src/target/target.h"

namespace gauntlet {

// The proprietary back end (paper section 6.1): its intermediate
// representations are closed, so translation validation cannot look inside
// — packet replay through the compiled artifact is the only available
// oracle. The same shared lowering, then a chip-flavoured stage with a
// PHV/stage resource model: its seeded crash faults abort compilation
// ("PHV allocation" / "stage allocation" assertions); its seeded semantic
// faults silently change the artifact's behavior — exactly the split in
// the fault catalogue's Tofino section. Registered as "tofino".
class TofinoTarget : public Target {
 public:
  const char* name() const override { return "tofino"; }
  const char* component() const override { return "TofinoBackEnd"; }
  BugLocation location() const override { return BugLocation::kBackEndTofino; }

  std::unique_ptr<Executable> Compile(const Program& program,
                                      const BugConfig& bugs) const override;

  std::vector<TargetCrashRule> CrashRules() const override {
    return {
        {"PHV allocation", "TofinoPhvAllocation", BugId::kTofinoCrashOnWideArith},
        {"stage allocation", "TofinoStageAllocator", BugId::kTofinoCrashManyTables},
    };
  }

  // The chip wants fodder that stresses its resource models: the tna-like
  // skeleton (more tables) plus a higher share of wide arithmetic.
  GeneratorOptions GeneratorBias(GeneratorOptions base) const override {
    base.backend = GeneratorBackend::kTofino;
    if (base.p_wide_arith < 20) {
      base.p_wide_arith = 20;
    }
    return base;
  }
};

}  // namespace gauntlet

#endif  // SRC_TARGET_TOFINO_H_
