#include "src/target/bmv2.h"

#include "src/target/lowering.h"

namespace gauntlet {

Bmv2Executable Bmv2Compiler::Compile(const Program& program) const {
  ProgramPtr lowered = LowerThroughPipeline(program, bugs_);
  CheckNoResidualCalls(*lowered, "BMv2");
  TargetQuirks quirks;
  quirks.emit_ignores_validity = bugs_.Has(BugId::kBmv2EmitIgnoresValidity);
  quirks.miss_runs_first_action = bugs_.Has(BugId::kBmv2TableMissRunsFirstAction);
  quirks.match_last_entry = bugs_.Has(BugId::kBmv2TablePriorityInversion);
  return Bmv2Executable(std::move(lowered), quirks);
}

}  // namespace gauntlet
