#include "src/target/bmv2.h"

#include <utility>

#include "src/target/lowering.h"

namespace gauntlet {

std::unique_ptr<Executable> Bmv2Target::Compile(const Program& program,
                                                const BugConfig& bugs) const {
  ProgramPtr lowered = LowerThroughPipeline(program, bugs);
  CheckNoResidualCalls(*lowered, "BMv2");
  TargetQuirks quirks;
  quirks.emit_ignores_validity = bugs.Has(BugId::kBmv2EmitIgnoresValidity);
  quirks.miss_runs_first_action = bugs.Has(BugId::kBmv2TableMissRunsFirstAction);
  quirks.match_last_entry = bugs.Has(BugId::kBmv2TablePriorityInversion);
  return std::make_unique<ConcreteExecutable>(std::move(lowered), quirks);
}

}  // namespace gauntlet
