#ifndef SRC_TARGET_LOWERING_H_
#define SRC_TARGET_LOWERING_H_

#include "src/ast/program.h"
#include "src/passes/bugs.h"

namespace gauntlet {

// The front/mid-end lowering both back ends share (P4C's role in Figure 1):
// clone the program, type-check it — with the seeded type-checker faults
// applied, when enabled — and run the standard pass pipeline under `bugs`.
// Throws CompileError for rejected programs and CompilerBugError when a
// seeded fault crashes a pass or snowballs into an ill-typed program.
ProgramPtr LowerThroughPipeline(const Program& program, const BugConfig& bugs);

// Back ends consume call-free programs: InlineFunctions must have removed
// every top-level function call. When the seeded kInlinerSkipsNestedCall
// fault leaves one behind, this is the later pass that crashes on it (the
// section 7.2 snowball). The message contains kResidualCallsNeedle, which
// crash ownership (Target::OwnsCrashMessage) and attribution
// (Campaign::AttributeCrash) both key on — one spelling for all three.
inline constexpr const char* kResidualCallsNeedle = "residual function calls";
void CheckNoResidualCalls(const Program& program, const char* backend_name);

// Structural queries the Tofino resource model (its seeded crash faults)
// needs: the number of match tables and whether any multiply wider than a
// 32-bit PHV container remains after lowering.
int CountTables(const Program& program);
bool HasWideMultiply(const Program& program);

// Total bits across every field of every declared header type — the eBPF
// resource model's stack-frame footprint (parsed headers live on the
// program stack in generated XDP code).
int TotalHeaderBits(const Program& program);

// The longest chain of parser states reachable from "start" — the number of
// iterations the generated eBPF parse loop unrolls to, which the in-kernel
// verifier bounds. Cycles in the state graph are cut at `limit` (the chain
// is "at least limit", which is all the resource model needs). 0 when the
// package binds no parser.
int ParserMaxChainDepth(const Program& program, int limit = 64);

}  // namespace gauntlet

#endif  // SRC_TARGET_LOWERING_H_
