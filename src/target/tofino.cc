#include "src/target/tofino.h"

#include <string>
#include <utility>

#include "src/target/lowering.h"

namespace gauntlet {

namespace {

// The modelled chip's match-stage budget: the seeded stage-allocator fault
// asserts once a program needs more tables than this.
constexpr int kStageTableBudget = 4;

}  // namespace

std::unique_ptr<Executable> TofinoTarget::Compile(const Program& program,
                                                  const BugConfig& bugs) const {
  ProgramPtr lowered = LowerThroughPipeline(program, bugs);
  CheckNoResidualCalls(*lowered, "Tofino");

  // Seeded back-end crash faults (resource-model assertions).
  if (bugs.Has(BugId::kTofinoCrashOnWideArith) && HasWideMultiply(*lowered)) {
    throw CompilerBugError(
        "Tofino back end: PHV allocation failed: no container class fits a >32-bit multiply");
  }
  if (bugs.Has(BugId::kTofinoCrashManyTables)) {
    const int tables = CountTables(*lowered);
    if (tables > kStageTableBudget) {
      throw CompilerBugError("Tofino back end: stage allocation asserted: " +
                             std::to_string(tables) + " match tables exceed the " +
                             std::to_string(kStageTableBudget) + "-stage budget");
    }
  }

  // Seeded back-end semantic faults become artifact quirks.
  TargetQuirks quirks;
  quirks.emit_ignores_validity = bugs.Has(BugId::kTofinoDeparserEmitsInvalid);
  quirks.skip_default_action = bugs.Has(BugId::kTofinoTableDefaultSkipped);
  quirks.narrow_alu_containers = bugs.Has(BugId::kTofinoPhvNarrowWide);
  quirks.swap_action_data_bytes = bugs.Has(BugId::kTofinoActionDataEndianSwap);
  return std::make_unique<ConcreteExecutable>(std::move(lowered), quirks);
}

}  // namespace gauntlet
