#ifndef SRC_TARGET_STF_H_
#define SRC_TARGET_STF_H_

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/support/bit_value.h"
#include "src/support/error.h"

namespace gauntlet {

// The packet-test harness layer (paper section 6, Figure 4): the data types
// a black-box target consumes — raw packets, control-plane table state and
// input/expected-output test cases — plus the PTF/STF-style replay driver
// and an on-disk text format for reproducers.

// A packet as a bit string. P4 headers are not byte-aligned in general
// (bit<N> fields with arbitrary N), so the packet abstraction is
// bit-granular: appends and reads address individual bit ranges, and hex
// rendering pads the trailing nibble with zero bits, exactly like p4c's STF
// tooling does when it prints byte strings.
class BitString {
 public:
  BitString() = default;

  // Number of bits.
  size_t size() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }

  void AppendBit(bool bit) { bits_.push_back(bit); }
  // Appends `value.width()` bits, most significant bit first.
  void AppendBits(const BitValue& value);
  void Append(const BitString& other);

  // Reads `width` bits starting at bit `offset` (0 = first appended bit).
  // Returns nullopt if the range runs past the end — the "packet too short"
  // condition a target reacts to by dropping the packet.
  std::optional<BitValue> ReadBits(size_t offset, uint32_t width) const;

  // Hex string, one char per 4 bits, zero-padded at the tail: 16 bits
  // 0xdead -> "dead"; 6 bits 0b101010 -> "a8".
  std::string ToHex() const;

  // Inverse of ToHex given the exact bit length (hex alone cannot represent
  // lengths that are not multiples of four). Throws CompileError on
  // malformed hex or when `bit_count` does not fit the digit count.
  static BitString FromHex(const std::string& hex, size_t bit_count);

  friend bool operator==(const BitString& a, const BitString& b) {
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(const BitString& a, const BitString& b) { return !(a == b); }

 private:
  std::vector<bool> bits_;  // in append order, MSB of each value first
};

std::ostream& operator<<(std::ostream& os, const BitString& bits);

// One installed table entry: exact-match key values (one per key column),
// the action to run on a hit, and its control-plane action data.
struct TableEntry {
  std::vector<BitValue> key;
  std::string action;
  std::vector<BitValue> action_data;
};

// Control-plane state for one test: table name -> installed entries.
// Lookup is first-match in installation order.
using TableConfig = std::map<std::string, std::vector<TableEntry>>;

// What a target did with one input packet.
struct PacketResult {
  BitString output;
  bool dropped = false;
};

inline bool operator==(const PacketResult& a, const PacketResult& b) {
  return a.dropped == b.dropped && (a.dropped || a.output == b.output);
}
inline bool operator!=(const PacketResult& a, const PacketResult& b) { return !(a == b); }

std::ostream& operator<<(std::ostream& os, const PacketResult& result);

// The oracle side of a test case, derived from the source program's formal
// semantics (Figure 4's "compute expected output" box).
struct ExpectedResult {
  bool dropped = false;
  BitString output;
};

// One self-contained packet test: input packet + table state + expectation.
struct PacketTest {
  std::string name;
  BitString input;
  TableConfig tables;
  ExpectedResult expected;
};

// Outcome of replaying one test on a target.
struct PacketTestOutcome {
  bool passed = false;
  PacketResult observed;
  std::string detail;  // human-readable mismatch diagnosis, empty if passed
};

// Compares an observed result against a test's expectation and produces the
// harness diagnostic ("payload mismatch: ..." / drop mismatches).
PacketTestOutcome JudgePacketTest(const PacketTest& test, const PacketResult& observed);

// Replays one test on any target exposing
//   PacketResult Run(const BitString&, const TableConfig&) const.
template <typename Target>
PacketTestOutcome RunPacketTest(const Target& target, const PacketTest& test) {
  return JudgePacketTest(test, target.Run(test.input, test.tables));
}

// Replays a batch; returns the failing (test, outcome) pairs in order.
template <typename Target>
std::vector<std::pair<PacketTest, PacketTestOutcome>> RunPacketTests(
    const Target& target, const std::vector<PacketTest>& tests) {
  std::vector<std::pair<PacketTest, PacketTestOutcome>> failures;
  for (const PacketTest& test : tests) {
    PacketTestOutcome outcome = RunPacketTest(target, test);
    if (!outcome.passed) {
      failures.emplace_back(test, std::move(outcome));
    }
  }
  return failures;
}

// --- STF text format -------------------------------------------------------
//
// On-disk reproducers in a p4c-STF-flavoured line format:
//
//   test path0
//   add t 8w17 8w2 set_b(8w153)
//   packet 0a0b/16
//   expect 0a0b/16        # or: expect drop
//
// One `test` block per test case. `add` installs a table entry (key values
// in column order, then action(data,...)); values use the BitValue syntax
// "<width>w<decimal>". Packets are "<hex>/<bits>" so non-nibble-aligned
// payloads round-trip exactly. '#' starts a comment; blank lines separate
// blocks. Emit -> Parse -> Emit is the identity.

std::string EmitStf(const PacketTest& test);
std::string EmitStf(const std::vector<PacketTest>& tests);

// Parses STF text; throws CompileError with a line number on malformed
// input.
std::vector<PacketTest> ParseStf(const std::string& text);

}  // namespace gauntlet

#endif  // SRC_TARGET_STF_H_
