#include "src/target/ebpf.h"

#include <string>
#include <utility>

#include "src/target/lowering.h"

namespace gauntlet {

namespace {

// The modelled stack frame available for parsed headers, in bits. Real BPF
// programs get 512 bytes for everything; the model scales it down so the
// seeded fault is reachable by hand-written triggers (40 bytes of header).
constexpr int kStackBitBudget = 320;

// The modelled verifier budget for the generated parse loop: how many
// sequential parser states the unrolled loop may chain before the in-kernel
// verifier rejects the program. Real verifiers bound total instructions /
// loop iterations; the model scales it down so the seeded fault is
// reachable by hand-written triggers (a five-state chain).
constexpr int kVerifierLoopBound = 4;

}  // namespace

std::unique_ptr<Executable> EbpfTarget::Compile(const Program& program,
                                                const BugConfig& bugs) const {
  ProgramPtr lowered = LowerThroughPipeline(program, bugs);
  CheckNoResidualCalls(*lowered, "eBPF");

  // Seeded back-end crash faults (resource-model assertions).
  if (bugs.Has(BugId::kEbpfCrashStackOverflow)) {
    const int bits = TotalHeaderBits(*lowered);
    if (bits > kStackBitBudget) {
      throw CompilerBugError("eBPF back end: stack frame allocation failed: " +
                             std::to_string((bits + 7) / 8) + " bytes of parsed headers "
                             "exceed the " + std::to_string(kStackBitBudget / 8) +
                             "-byte stack frame");
    }
  }
  if (bugs.Has(BugId::kEbpfCrashVerifierLoopBound)) {
    const int depth = ParserMaxChainDepth(*lowered);
    if (depth > kVerifierLoopBound) {
      throw CompilerBugError("eBPF back end: verifier rejected the parse loop: " +
                             std::to_string(depth) + " chained parser states exceed the " +
                             std::to_string(kVerifierLoopBound) +
                             "-iteration loop bound");
    }
  }

  // Seeded back-end semantic faults become artifact quirks.
  TargetQuirks quirks;
  quirks.reverse_extract_field_order = bugs.Has(BugId::kEbpfParserExtractReversed);
  quirks.miss_drops_packet = bugs.Has(BugId::kEbpfMapMissDropsPacket);
  quirks.swap_map_key_bytes = bugs.Has(BugId::kEbpfMapKeyByteOrderSwap);
  return std::make_unique<ConcreteExecutable>(std::move(lowered), quirks);
}

}  // namespace gauntlet
