#ifndef SRC_TARGET_EBPF_H_
#define SRC_TARGET_EBPF_H_

#include <memory>
#include <vector>

#include "src/target/target.h"

namespace gauntlet {

// The eBPF/XDP-flavoured software back end (the third registered target,
// proving the back-end API is pluggable — p4c's own ebpf backend is the
// model, §7.3). Same shared lowering, then a stage shaped by the kernel
// execution environment:
//
//   * resource model: parsed headers live on the BPF program's stack
//     frame, which is hard-capped — the seeded stack-allocator crash fault
//     asserts when the program's headers exceed the modelled budget;
//   * tables compile to BPF map lookups — the seeded map-miss fault aborts
//     the program (XDP_ABORTED, i.e. a dropped packet) on a lookup miss
//     instead of running the default action;
//   * the parser compiles to a generated field-extraction loop — the
//     seeded parser-gen fault walks a header's field list in reverse, so
//     fields are extracted in the wrong order (the ROADMAP parser fault
//     model);
//   * that parse loop is unrolled under the in-kernel verifier's
//     bounded-iteration budget — the seeded verifier fault rejects any
//     program whose parser chains more states than the modelled bound
//     (the ROADMAP bounded-loop crash class).
//
// Registered as "ebpf".
class EbpfTarget : public Target {
 public:
  const char* name() const override { return "ebpf"; }
  const char* component() const override { return "EbpfBackEnd"; }
  BugLocation location() const override { return BugLocation::kBackEndEbpf; }

  std::unique_ptr<Executable> Compile(const Program& program,
                                      const BugConfig& bugs) const override;

  std::vector<TargetCrashRule> CrashRules() const override {
    return {
        {"stack frame", "EbpfStackAllocator", BugId::kEbpfCrashStackOverflow},
        {"parse loop", "EbpfVerifier", BugId::kEbpfCrashVerifierLoopBound},
    };
  }

  // Kernel-shaped fodder: whole-byte fields (map keys and packet loads go
  // through byte-oriented codecs — exercises the byte-order fault class)
  // and a modest header budget so programs hover near the modelled stack
  // frame instead of blowing far past it.
  GeneratorOptions GeneratorBias(GeneratorOptions base) const override {
    base.byte_aligned_fields = true;
    if (base.max_fields_per_header > 3) {
      base.max_fields_per_header = 3;
    }
    if (base.p_wide_arith > 10) {
      base.p_wide_arith = 10;
    }
    return base;
  }
};

}  // namespace gauntlet

#endif  // SRC_TARGET_EBPF_H_
