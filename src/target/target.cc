#include "src/target/target.h"

#include <map>
#include <mutex>

#include "src/support/error.h"
#include "src/target/bmv2.h"
#include "src/target/ebpf.h"
#include "src/target/lowering.h"
#include "src/target/tofino.h"

namespace gauntlet {

bool Target::OwnsCrashMessage(const std::string& message) const {
  // Every back end runs the residual-call check; a crash there is a
  // back-end crash site (the §7.2 snowball), invisible to translation
  // validation.
  if (message.find(kResidualCallsNeedle) != std::string::npos) {
    return true;
  }
  for (const TargetCrashRule& rule : CrashRules()) {
    if (message.find(rule.needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::vector<BugId> Target::CatalogueFaults() const {
  std::vector<BugId> faults;
  for (const BugInfo& info : BugCatalogue()) {
    if (info.location == location()) {
      faults.push_back(info.id);
    }
  }
  return faults;
}

namespace {

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<Target>> targets;  // registration order
};

// The built-ins are registered here, by direct reference, rather than via
// per-TU self-registering statics: libgauntlet is a static library, and a
// linker is free to drop an object file none of whose symbols are
// referenced — which is exactly what a pure self-registration scheme
// becomes once the campaign stops naming back ends.
Registry& Instance() {
  static Registry* registry = [] {
    auto* r = new Registry();
    r->targets.push_back(std::make_unique<Bmv2Target>());
    r->targets.push_back(std::make_unique<TofinoTarget>());
    r->targets.push_back(std::make_unique<EbpfTarget>());
    return r;
  }();
  return *registry;
}

}  // namespace

void TargetRegistry::Register(std::unique_ptr<Target> target) {
  Registry& registry = Instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const std::unique_ptr<Target>& existing : registry.targets) {
    if (std::string(existing->name()) == target->name()) {
      throw CompileError(std::string("target '") + target->name() + "' is already registered");
    }
  }
  registry.targets.push_back(std::move(target));
}

const Target* TargetRegistry::Find(const std::string& name) {
  Registry& registry = Instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const std::unique_ptr<Target>& target : registry.targets) {
    if (name == target->name()) {
      return target.get();
    }
  }
  return nullptr;
}

const Target& TargetRegistry::Get(const std::string& name) {
  const Target* target = Find(name);
  if (target == nullptr) {
    throw CompileError("unknown target '" + name + "'; registered targets: " + JoinedNames());
  }
  return *target;
}

std::vector<const Target*> TargetRegistry::Resolve(const std::vector<std::string>& names) {
  if (names.empty()) {
    return All();
  }
  // First occurrence wins: `--targets ebpf,ebpf` must not replay every
  // program twice and double-count findings.
  std::vector<const Target*> targets;
  targets.reserve(names.size());
  for (const std::string& name : names) {
    const Target* target = &Get(name);
    bool seen = false;
    for (const Target* existing : targets) {
      seen |= existing == target;
    }
    if (!seen) {
      targets.push_back(target);
    }
  }
  return targets;
}

std::string TargetRegistry::JoinedNames() {
  std::string joined;
  for (const std::string& name : Names()) {
    joined += (joined.empty() ? "" : ", ") + name;
  }
  return joined;
}

const Target* TargetRegistry::ForLocation(BugLocation location) {
  Registry& registry = Instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const std::unique_ptr<Target>& target : registry.targets) {
    if (target->location() == location) {
      return target.get();
    }
  }
  return nullptr;
}

std::vector<std::string> TargetRegistry::Names() {
  Registry& registry = Instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> names;
  names.reserve(registry.targets.size());
  for (const std::unique_ptr<Target>& target : registry.targets) {
    names.emplace_back(target->name());
  }
  return names;
}

std::vector<const Target*> TargetRegistry::All() {
  Registry& registry = Instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<const Target*> targets;
  targets.reserve(registry.targets.size());
  for (const std::unique_ptr<Target>& target : registry.targets) {
    targets.push_back(target.get());
  }
  return targets;
}

}  // namespace gauntlet
