#include "src/target/stf.h"

#include <sstream>

namespace gauntlet {

void BitString::AppendBits(const BitValue& value) {
  for (uint32_t i = value.width(); i > 0; --i) {
    bits_.push_back(((value.bits() >> (i - 1)) & 1) != 0);
  }
}

void BitString::Append(const BitString& other) {
  bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
}

std::optional<BitValue> BitString::ReadBits(size_t offset, uint32_t width) const {
  if (width == 0 || width > BitValue::kMaxWidth || offset + width > bits_.size()) {
    return std::nullopt;
  }
  uint64_t value = 0;
  for (uint32_t i = 0; i < width; ++i) {
    value = (value << 1) | (bits_[offset + i] ? 1 : 0);
  }
  return BitValue(width, value);
}

std::string BitString::ToHex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string hex;
  hex.reserve((bits_.size() + 3) / 4);
  for (size_t i = 0; i < bits_.size(); i += 4) {
    unsigned nibble = 0;
    for (size_t j = 0; j < 4; ++j) {
      nibble = (nibble << 1) | (i + j < bits_.size() && bits_[i + j] ? 1 : 0);
    }
    hex.push_back(kDigits[nibble]);
  }
  return hex;
}

BitString BitString::FromHex(const std::string& hex, size_t bit_count) {
  if (bit_count > hex.size() * 4 || (bit_count + 3) / 4 != hex.size()) {
    throw CompileError("STF: bit count " + std::to_string(bit_count) +
                       " does not match hex digit count " + std::to_string(hex.size()));
  }
  BitString bits;
  for (size_t i = 0; i < hex.size(); ++i) {
    const char c = hex[i];
    unsigned nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<unsigned>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<unsigned>(c - 'A') + 10;
    } else {
      throw CompileError(std::string("STF: invalid hex digit '") + c + "'");
    }
    for (unsigned j = 0; j < 4; ++j) {
      const bool bit = ((nibble >> (3 - j)) & 1) != 0;
      if (i * 4 + j < bit_count) {
        bits.AppendBit(bit);
      } else if (bit) {
        // Padding past bit_count must be zero (ToHex always pads with
        // zeros); a set bit there means the hex and the length disagree.
        throw CompileError("STF: nonzero padding bits past bit " +
                           std::to_string(bit_count) + " in '" + hex + "'");
      }
    }
  }
  return bits;
}

std::ostream& operator<<(std::ostream& os, const BitString& bits) {
  return os << bits.ToHex() << "/" << bits.size();
}

std::ostream& operator<<(std::ostream& os, const PacketResult& result) {
  if (result.dropped) {
    return os << "<dropped>";
  }
  return os << result.output;
}

PacketTestOutcome JudgePacketTest(const PacketTest& test, const PacketResult& observed) {
  PacketTestOutcome outcome;
  outcome.observed = observed;
  if (test.expected.dropped != observed.dropped) {
    outcome.passed = false;
    if (test.expected.dropped) {
      outcome.detail = "expected drop, target emitted " + observed.output.ToHex() + " (" +
                       std::to_string(observed.output.size()) + " bits)";
    } else {
      outcome.detail = "target dropped the packet, expected " + test.expected.output.ToHex() +
                       " (" + std::to_string(test.expected.output.size()) + " bits)";
    }
    return outcome;
  }
  if (!observed.dropped && observed.output != test.expected.output) {
    outcome.passed = false;
    outcome.detail = "payload mismatch: expected " + test.expected.output.ToHex() + " (" +
                     std::to_string(test.expected.output.size()) + " bits), observed " +
                     observed.output.ToHex() + " (" +
                     std::to_string(observed.output.size()) + " bits)";
    return outcome;
  }
  outcome.passed = true;
  return outcome;
}

// --- STF text format -------------------------------------------------------

namespace {

std::string PacketToken(const BitString& bits) {
  return bits.ToHex() + "/" + std::to_string(bits.size());
}

// Strict unsigned decimal: every character must be a digit (stoul-style
// parsing would silently accept signs and trailing garbage in hand-edited
// reproducers).
uint64_t ParseDecimal(const std::string& text, int line_number) {
  if (text.empty()) {
    throw CompileError("STF line " + std::to_string(line_number) + ": missing number");
  }
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw CompileError("STF line " + std::to_string(line_number) + ": bad number '" + text +
                         "'");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      throw CompileError("STF line " + std::to_string(line_number) + ": number '" + text +
                         "' overflows 64 bits");
    }
    value = value * 10 + digit;
  }
  return value;
}

BitString ParsePacketToken(const std::string& token, int line_number) {
  const size_t slash = token.rfind('/');
  if (slash == std::string::npos) {
    throw CompileError("STF line " + std::to_string(line_number) +
                       ": expected <hex>/<bits>, got '" + token + "'");
  }
  const std::string hex = token.substr(0, slash);
  const size_t bit_count = ParseDecimal(token.substr(slash + 1), line_number);
  return BitString::FromHex(hex, bit_count);
}

BitValue ParseValueToken(const std::string& token, int line_number) {
  const size_t w = token.find('w');
  if (w == std::string::npos || w == 0 || w + 1 >= token.size()) {
    throw CompileError("STF line " + std::to_string(line_number) +
                       ": expected <width>w<value>, got '" + token + "'");
  }
  const uint64_t width = ParseDecimal(token.substr(0, w), line_number);
  const uint64_t value = ParseDecimal(token.substr(w + 1), line_number);
  if (width == 0 || width > BitValue::kMaxWidth) {
    throw CompileError("STF line " + std::to_string(line_number) + ": width out of range in '" +
                       token + "'");
  }
  if (value > BitValue::MaskFor(static_cast<uint32_t>(width))) {
    throw CompileError("STF line " + std::to_string(line_number) + ": value '" + token +
                       "' does not fit in " + std::to_string(width) + " bits");
  }
  return BitValue(static_cast<uint32_t>(width), value);
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

}  // namespace

std::string EmitStf(const PacketTest& test) {
  // Whitespace or '#' in a name would break the documented
  // Emit -> Parse -> Emit identity (the name would tokenize or truncate).
  if (test.name.empty()) {
    throw CompileError("STF: cannot emit a test with an empty name");
  }
  for (const char c : test.name) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '#') {
      throw CompileError("STF: test name '" + test.name +
                         "' contains whitespace or '#' and cannot be emitted");
    }
  }
  std::string out = "test " + test.name + "\n";
  for (const auto& [table, entries] : test.tables) {
    for (const TableEntry& entry : entries) {
      out += "add " + table;
      for (const BitValue& key : entry.key) {
        out += " " + key.ToString();
      }
      out += " " + entry.action + "(";
      for (size_t i = 0; i < entry.action_data.size(); ++i) {
        out += (i > 0 ? "," : "") + entry.action_data[i].ToString();
      }
      out += ")\n";
    }
  }
  out += "packet " + PacketToken(test.input) + "\n";
  if (test.expected.dropped) {
    out += "expect drop\n";
  } else {
    out += "expect " + PacketToken(test.expected.output) + "\n";
  }
  return out;
}

std::string EmitStf(const std::vector<PacketTest>& tests) {
  std::string out;
  for (size_t i = 0; i < tests.size(); ++i) {
    if (i > 0) {
      out += "\n";
    }
    out += EmitStf(tests[i]);
  }
  return out;
}

std::vector<PacketTest> ParseStf(const std::string& text) {
  std::vector<PacketTest> tests;
  PacketTest current;
  bool in_test = false;
  bool has_packet = false;
  bool has_expect = false;
  auto flush = [&] {
    if (in_test) {
      if (!has_packet || !has_expect) {
        throw CompileError("STF: test '" + current.name + "' is missing " +
                           (has_packet ? "an 'expect'" : "a 'packet'") + " line");
      }
      tests.push_back(std::move(current));
      current = PacketTest{};
      in_test = false;
      has_packet = false;
      has_expect = false;
    }
  };

  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const size_t comment = line.find('#');
    if (comment != std::string::npos) {
      line = line.substr(0, comment);
    }
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& directive = tokens[0];
    if (directive == "test") {
      flush();
      if (tokens.size() != 2) {
        throw CompileError("STF line " + std::to_string(line_number) +
                           ": expected 'test <name>'");
      }
      in_test = true;
      current.name = tokens[1];
      continue;
    }
    if (!in_test) {
      throw CompileError("STF line " + std::to_string(line_number) + ": directive '" +
                         directive + "' outside a test block");
    }
    if (directive == "add") {
      // add <table> <key>... <action>(<data>,...)
      if (tokens.size() < 3) {
        throw CompileError("STF line " + std::to_string(line_number) +
                           ": expected 'add <table> <key>... <action>(...)'");
      }
      const std::string& action_spec = tokens.back();
      const size_t open = action_spec.find('(');
      if (open == std::string::npos || action_spec.back() != ')') {
        throw CompileError("STF line " + std::to_string(line_number) +
                           ": malformed action spec '" + action_spec + "'");
      }
      TableEntry entry;
      entry.action = action_spec.substr(0, open);
      const std::string args = action_spec.substr(open + 1, action_spec.size() - open - 2);
      size_t start = 0;
      while (start < args.size()) {
        size_t end = args.find(',', start);
        if (end == std::string::npos) {
          end = args.size();
        }
        entry.action_data.push_back(ParseValueToken(args.substr(start, end - start), line_number));
        start = end + 1;
      }
      for (size_t i = 2; i + 1 < tokens.size(); ++i) {
        entry.key.push_back(ParseValueToken(tokens[i], line_number));
      }
      current.tables[tokens[1]].push_back(std::move(entry));
      continue;
    }
    if (directive == "packet") {
      if (tokens.size() != 2) {
        throw CompileError("STF line " + std::to_string(line_number) +
                           ": expected 'packet <hex>/<bits>'");
      }
      if (has_packet) {
        throw CompileError("STF line " + std::to_string(line_number) +
                           ": duplicate 'packet' line in test '" + current.name + "'");
      }
      current.input = ParsePacketToken(tokens[1], line_number);
      has_packet = true;
      continue;
    }
    if (directive == "expect") {
      if (has_expect) {
        throw CompileError("STF line " + std::to_string(line_number) +
                           ": duplicate 'expect' line in test '" + current.name + "'");
      }
      if (tokens.size() == 2 && tokens[1] == "drop") {
        current.expected.dropped = true;
        has_expect = true;
        continue;
      }
      if (tokens.size() != 2) {
        throw CompileError("STF line " + std::to_string(line_number) +
                           ": expected 'expect drop' or 'expect <hex>/<bits>'");
      }
      current.expected.dropped = false;
      current.expected.output = ParsePacketToken(tokens[1], line_number);
      has_expect = true;
      continue;
    }
    throw CompileError("STF line " + std::to_string(line_number) + ": unknown directive '" +
                       directive + "'");
  }
  flush();
  return tests;
}

}  // namespace gauntlet
