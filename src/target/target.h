#ifndef SRC_TARGET_TARGET_H_
#define SRC_TARGET_TARGET_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/ast/program.h"
#include "src/gen/generator.h"
#include "src/passes/bugs.h"
#include "src/target/concrete.h"
#include "src/target/stf.h"

namespace gauntlet {

// The polymorphic back-end API (paper technique 3): every registered back
// end is a black box that eats a program and produces an artifact that eats
// packets. Nothing above src/target/ names a concrete back end — the
// campaign, corpus, replay and CLI layers all iterate the TargetRegistry.

// A compiled artifact. From the harness's point of view this is the only
// interface the paper's packet-replay oracle relies on.
class Executable {
 public:
  virtual ~Executable() = default;
  virtual PacketResult Run(const BitString& packet, const TableConfig& tables) const = 0;
  virtual const Program& program() const = 0;
};

// A crash-attribution rule a target contributes to the campaign: when a
// compile aborts with a message containing `needle`, the crash site is
// `component` and (when distinctive enough) the seeded fault is `bug`.
// These are the target's back-end crash sites only; shared front/mid-end
// rules live with the campaign.
struct TargetCrashRule {
  const char* needle;
  const char* component;
  std::optional<BugId> bug;
};

// One pluggable back end. Implementations translate the enabled BugIds at
// their BugLocation into TargetQuirks (semantic faults) and resource-model
// assertions (crash faults); everything else about a back end — its
// catalogue section, its crash sites, the component string findings blame —
// is exposed here so the layers above stay target-generic.
class Target {
 public:
  virtual ~Target() = default;

  // Registry key and CLI spelling, e.g. "bmv2".
  virtual const char* name() const = 0;
  // The component string black-box findings blame, e.g. "Bmv2BackEnd".
  virtual const char* component() const = 0;
  // The catalogue section holding this back end's seeded faults.
  virtual BugLocation location() const = 0;

  // Lowers through the shared pipeline (with whatever seeded front/mid-end
  // faults `bugs` enables), then the back-end-specific stage. Throws
  // CompileError for rejected programs and CompilerBugError when a seeded
  // fault crashes a pass, snowballs into an ill-typed program, or trips the
  // back end's resource model.
  virtual std::unique_ptr<Executable> Compile(const Program& program,
                                              const BugConfig& bugs) const = 0;

  // This back end's own crash sites (resource-model assertions). Used both
  // to attribute crash findings and to decide crash ownership below.
  virtual std::vector<TargetCrashRule> CrashRules() const { return {}; }

  // The back end's preferred random-program shaping (the §4.2 "back-end-
  // specific skeleton"): returns `base` with the knobs this target wants
  // tweaked — byte-aligned small-stack programs for eBPF, wide-arithmetic
  // table-heavy fodder for Tofino. Campaigns apply it when `--targets X`
  // selects exactly this target; the default is no bias.
  virtual GeneratorOptions GeneratorBias(GeneratorOptions base) const { return base; }

  // Whether a compile-time crash with this message happened *inside* this
  // back end — i.e. translation validation over the open pipeline could not
  // have observed it. Residual-call crashes count: the inliner snowball
  // (§7.2) only surfaces when a back end consumes the mangled program.
  bool OwnsCrashMessage(const std::string& message) const;

  // The catalogue entries seeded into this back end, in catalogue order.
  std::vector<BugId> CatalogueFaults() const;
};

// The process-wide registry of back ends. Built-in targets (BMv2, Tofino,
// eBPF) are registered on first use — explicitly, from this translation
// unit, so a static-library link can never silently drop a back end whose
// symbols nothing referenced. Register() is the extension point for
// out-of-tree targets; registration order is stable and is the order
// campaigns iterate, so reports stay deterministic.
class TargetRegistry {
 public:
  // Adds a target. Throws CompileError when the name is already taken.
  static void Register(std::unique_ptr<Target> target);

  // Lookup by name; Get throws CompileError listing the registered names,
  // Find returns nullptr.
  static const Target& Get(const std::string& name);
  static const Target* Find(const std::string& name);

  // The back end whose seeded faults live at `location` (nullptr when no
  // registered target claims it).
  static const Target* ForLocation(BugLocation location);

  // Registered names / targets in registration order.
  static std::vector<std::string> Names();
  static std::vector<const Target*> All();

  // Resolves a name list (empty = every registered target, in registration
  // order); throws CompileError on an unknown name. The one spelling of
  // "which back ends?" shared by the campaign, replay and CLI layers.
  static std::vector<const Target*> Resolve(const std::vector<std::string>& names);

  // The registered names as one comma-separated string (for diagnostics
  // and --help).
  static std::string JoinedNames();
};

// The execution engine shared by the built-in back ends: the lowered
// program driven by one ConcreteInterpreter parameterized with the quirks
// the compiler's seeded faults baked in. One interpreter per compiled
// artifact, reused across every Run — batch packet replay pays setup once
// per program. References *program_, whose heap address is stable.
class ConcreteExecutable : public Executable {
 public:
  ConcreteExecutable(std::shared_ptr<const Program> program, TargetQuirks quirks)
      : program_(std::move(program)), interpreter_(*program_, quirks) {}

  PacketResult Run(const BitString& packet, const TableConfig& tables) const override {
    return interpreter_.RunPacket(packet, tables);
  }

  const Program& program() const override { return *program_; }

 private:
  std::shared_ptr<const Program> program_;
  ConcreteInterpreter interpreter_;
};

}  // namespace gauntlet

#endif  // SRC_TARGET_TARGET_H_
