// The `gauntlet` command-line tool: the packaging a downstream user drives.
//
//   gauntlet compile <file.p4>              type-check + run the pass pipeline,
//                                           print the program after every pass
//   gauntlet validate <file.p4> [--bug B]   translation-validate the pipeline
//   gauntlet testgen <file.p4>              emit STF-style packet tests
//   gauntlet fuzz [N] [seed] [--bug B ...]  random-program campaign (serial)
//   gauntlet campaign [N] [seed] [--jobs J] [--corpus DIR] [--bug B ...]
//                                           parallel campaign + STF corpus
//   gauntlet replay <file.p4> <file.stf> [--bug B ...]
//                                           re-run a stored reproducer
//   gauntlet reduce <file.p4> --bug B       shrink a reproducer
//   gauntlet bugs                           list the seeded-fault catalogue
//
// Programs are mini-P4 (see README). --bug takes catalogue names from
// `gauntlet bugs`.
//
// Exit codes are gateable: commands that *check* something (validate,
// testgen, fuzz, campaign, replay) exit nonzero when they find problems —
// semantic diffs, zero generated tests, campaign findings, packet
// mismatches — so CI scripts can run them directly.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/frontend/parser.h"
#include "src/frontend/printer.h"
#include "src/gauntlet/campaign.h"
#include "src/reduce/reducer.h"
#include "src/runtime/corpus.h"
#include "src/runtime/parallel_campaign.h"
#include "src/target/bmv2.h"
#include "src/testgen/testgen.h"
#include "src/tv/validator.h"
#include "src/typecheck/typecheck.h"

namespace {

using namespace gauntlet;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw CompileError("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

BugConfig ParseBugFlags(int argc, char** argv) {
  BugConfig bugs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bug") != 0) {
      continue;
    }
    if (i + 1 >= argc) {
      throw CompileError("--bug expects a catalogue name; run `gauntlet bugs`");
    }
    bool known = false;
    for (const BugInfo& info : BugCatalogue()) {
      if (info.name == std::string(argv[i + 1])) {
        bugs.Enable(info.id);
        known = true;
      }
    }
    if (!known) {
      throw CompileError(std::string("unknown --bug '") + argv[i + 1] +
                         "'; run `gauntlet bugs` for the catalogue");
    }
  }
  return bugs;
}

// Splits a command's arguments (argv[2:]) into positionals and value-taking
// flags. Every `--flag` must be listed in `value_flags` and must have a
// value: a flag's value is never mistaken for a positional (the
// `campaign --jobs 4` ≠ `campaign 4` trap), and a trailing flag with its
// value forgotten fails fast instead of being silently dropped.
std::vector<std::string> SplitArgs(int argc, char** argv,
                                   const std::vector<std::string>& value_flags,
                                   std::map<std::string, std::string>& flags) {
  std::vector<std::string> positionals;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals.push_back(arg);
      continue;
    }
    bool known = false;
    for (const std::string& flag : value_flags) {
      known |= flag == arg;
    }
    if (!known) {
      throw CompileError("unknown flag '" + arg + "' for this command");
    }
    if (i + 1 >= argc) {
      throw CompileError("flag '" + arg + "' expects a value");
    }
    flags[arg] = argv[++i];
  }
  return positionals;
}

int CmdBugs() {
  std::printf("%-36s %-9s %-14s %-22s %s\n", "name", "kind", "location", "component",
              "models");
  for (const BugInfo& info : BugCatalogue()) {
    const char* location = info.location == BugLocation::kFrontEnd    ? "front end"
                           : info.location == BugLocation::kMidEnd    ? "mid end"
                           : info.location == BugLocation::kBackEndBmv2 ? "bmv2 backend"
                                                                        : "tofino backend";
    std::printf("%-36s %-9s %-14s %-22s %s\n", info.name,
                info.kind == BugKind::kCrash ? "crash" : "semantic", location,
                info.pass_name, info.paper_ref);
  }
  return 0;
}

int CmdCompile(const std::string& path, const BugConfig& bugs) {
  auto program = Parser::ParseString(ReadFile(path));
  TypeCheck(*program, TypeCheckOptionsFromBugs(bugs));
  PassManager::StandardPipeline().Run(
      *program, bugs, [](const std::string& pass_name, const Program& snapshot) {
        std::printf("---- after %s ----\n%s\n", pass_name.c_str(),
                    PrintProgram(snapshot).c_str());
      });
  std::printf("---- final program ----\n%s", PrintProgram(*program).c_str());
  return 0;
}

int CmdValidate(const std::string& path, const BugConfig& bugs) {
  auto program = Parser::ParseString(ReadFile(path));
  const TranslationValidator validator(PassManager::StandardPipeline());
  const TvReport report = validator.Validate(*program, bugs);
  if (report.crashed) {
    std::printf("CRASH: %s\n", report.crash_message.c_str());
  }
  int problems = report.crashed ? 1 : 0;
  for (const TvPassResult& result : report.pass_results) {
    std::printf("%-24s %s%s%s\n", result.pass_name.c_str(),
                TvVerdictToString(result.verdict).c_str(), result.detail.empty() ? "" : " — ",
                result.detail.c_str());
    if (result.verdict == TvVerdict::kSemanticDiff) {
      ++problems;
      for (const auto& [name, value] : result.counterexample.bit_values) {
        if (name.find("undef") == std::string::npos) {
          std::printf("    witness %s = %s\n", name.c_str(), value.ToString().c_str());
        }
      }
    } else if (result.verdict == TvVerdict::kInvalidEmit) {
      // An emitted program that fails to re-parse/re-typecheck is a
      // definite compiler bug (campaign.cc counts it as a crash finding).
      ++problems;
    }
  }
  std::printf("%zu changed-pass pairs validated, %d problem%s found\n",
              report.pass_results.size(), problems, problems == 1 ? "" : "s");
  return problems == 0 ? 0 : 1;
}

int CmdTestgen(const std::string& path) {
  auto program = Parser::ParseString(ReadFile(path));
  TypeCheck(*program);
  std::vector<PacketTest> tests;
  try {
    tests = TestCaseGenerator().Generate(*program);
  } catch (const UnsupportedError& error) {
    std::fprintf(stderr, "testgen: unsupported program: %s\n", error.what());
    return 1;
  }
  // STF text on stdout: redirect into a .stf file to get an on-disk
  // reproducer that ParseStf reads back.
  std::printf("%s", EmitStf(tests).c_str());
  std::fprintf(stderr, "%zu tests generated\n", tests.size());
  // No tests means no coverage — scripts piping this into a replay harness
  // must be able to gate on it.
  return tests.empty() ? 1 : 0;
}

void PrintReport(const CampaignReport& report) {
  for (const Finding& finding : report.findings) {
    std::printf("prog %3d  %-22s %-9s %-24s %s\n", finding.program_index,
                DetectionMethodToString(finding.method).c_str(),
                finding.kind == BugKind::kCrash ? "crash" : "semantic",
                finding.component.c_str(),
                finding.attributed.has_value() ? BugIdToString(*finding.attributed).c_str()
                                               : "(unattributed)");
  }
  std::printf("%d programs, %zu findings, %zu distinct bugs, %d suspicious reports\n",
              report.programs_generated, report.findings.size(), report.DistinctCount(),
              report.undef_divergences);
}

int CmdFuzz(int argc, char** argv, const BugConfig& bugs) {
  std::map<std::string, std::string> flags;
  const std::vector<std::string> positionals = SplitArgs(argc, argv, {"--bug"}, flags);
  CampaignOptions options;
  options.num_programs = positionals.size() >= 1 ? std::atoi(positionals[0].c_str()) : 50;
  options.seed =
      positionals.size() >= 2 ? static_cast<uint64_t>(std::atoll(positionals[1].c_str())) : 1;
  const CampaignReport report = Campaign(options).Run(bugs);
  PrintReport(report);
  return report.findings.empty() ? 0 : 1;
}

int CmdCampaign(int argc, char** argv, const BugConfig& bugs) {
  std::map<std::string, std::string> flags;
  const std::vector<std::string> positionals =
      SplitArgs(argc, argv, {"--jobs", "--corpus", "--bug"}, flags);
  ParallelCampaignOptions options;
  options.campaign.num_programs =
      positionals.size() >= 1 ? std::atoi(positionals[0].c_str()) : 50;
  options.campaign.seed =
      positionals.size() >= 2 ? static_cast<uint64_t>(std::atoll(positionals[1].c_str())) : 1;
  if (flags.count("--jobs") > 0) {
    options.jobs = std::atoi(flags.at("--jobs").c_str());
  }
  if (flags.count("--corpus") > 0) {
    options.corpus_dir = flags.at("--corpus");
  }
  const CampaignReport report = ParallelCampaign(options).Run(bugs);
  PrintReport(report);
  if (!options.corpus_dir.empty()) {
    // Stat-only count; the corpus dedups across runs, so the directory can
    // legitimately hold more reproducers than this run's findings.
    std::fprintf(stderr, "corpus: %d reproducers under %s (all runs)\n",
                 CountCorpus(options.corpus_dir), options.corpus_dir.c_str());
  }
  return report.findings.empty() ? 0 : 1;
}

int CmdReplay(const std::string& p4_path, const std::string& stf_path,
              const BugConfig& bugs) {
  const ReplayOutcome outcome = ReplayStfText(ReadFile(p4_path), ReadFile(stf_path), bugs);
  for (const std::string& detail : outcome.failure_details) {
    std::printf("FAIL %s\n", detail.c_str());
  }
  std::printf("%d tests replayed, %d mismatch%s\n", outcome.tests_run, outcome.failures,
              outcome.failures == 1 ? "" : "es");
  return outcome.passed() ? 0 : 1;
}

int CmdReduce(const std::string& path, const BugConfig& bugs) {
  auto program = Parser::ParseString(ReadFile(path));
  // Pick the oracle automatically: crash if the buggy compile crashes,
  // otherwise a semantic-diff oracle over any pass.
  InterestingnessOracle oracle;
  try {
    Bmv2Compiler(bugs).Compile(*program);
    oracle = SemanticDiffOracle(bugs, "");
  } catch (const CompilerBugError& error) {
    // Reduce against the leading assertion text.
    std::string needle = error.what();
    if (needle.size() > 40) {
      needle = needle.substr(0, 40);
    }
    oracle = CrashOracle(bugs, needle);
  } catch (const CompileError&) {
    oracle = [&bugs](const Program& candidate) {
      try {
        Bmv2Compiler(bugs).Compile(candidate);
        return false;
      } catch (const CompileError&) {
        return true;
      } catch (const std::exception&) {
        return false;
      }
    };
  }
  const ReductionResult result = ReduceProgram(*program, oracle);
  std::printf("%s", PrintProgram(*result.program).c_str());
  std::fprintf(stderr, "reduced %zu -> %zu chars in %d oracle calls\n", result.original_size,
               result.reduced_size, result.oracle_calls);
  return 0;
}

int Usage() {
  std::printf(
      "usage: gauntlet <command> [args]\n"
      "  compile <file.p4> [--bug B ...]\n"
      "  validate <file.p4> [--bug B ...]\n"
      "  testgen <file.p4>\n"
      "  fuzz [N] [seed] [--bug B ...]\n"
      "  campaign [N] [seed] [--jobs J] [--corpus DIR] [--bug B ...]\n"
      "  replay <file.p4> <file.stf> [--bug B ...]\n"
      "  reduce <file.p4> --bug B [...]\n"
      "  bugs\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  try {
    const BugConfig bugs = ParseBugFlags(argc, argv);
    if (command == "bugs") {
      return CmdBugs();
    }
    if (command == "compile" && argc >= 3) {
      return CmdCompile(argv[2], bugs);
    }
    if (command == "validate" && argc >= 3) {
      return CmdValidate(argv[2], bugs);
    }
    if (command == "testgen" && argc >= 3) {
      return CmdTestgen(argv[2]);
    }
    if (command == "fuzz") {
      return CmdFuzz(argc, argv, bugs);
    }
    if (command == "campaign") {
      return CmdCampaign(argc, argv, bugs);
    }
    if (command == "replay" && argc >= 4) {
      return CmdReplay(argv[2], argv[3], bugs);
    }
    if (command == "reduce" && argc >= 3) {
      return CmdReduce(argv[2], bugs);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "gauntlet: %s\n", error.what());
    return 1;
  }
  return Usage();
}
