// The `gauntlet` command-line tool: the packaging a downstream user drives.
//
//   gauntlet compile <file.p4>              type-check + run the pass pipeline,
//                                           print the program after every pass
//   gauntlet validate <file.p4> [--bug B]   translation-validate the pipeline
//   gauntlet testgen <file.p4>              emit STF-style packet tests
//   gauntlet fuzz [N] [seed] [--bug B ...]  random-program campaign (serial)
//   gauntlet campaign [N] [seed] [--jobs J] [--corpus DIR] [--targets T,..]
//                                           parallel campaign + STF corpus
//   gauntlet replay <file.p4> <file.stf>    re-run a stored reproducer
//   gauntlet replay --corpus DIR            bulk-replay every stored triple
//   gauntlet reduce <file.p4> --bug B       shrink a reproducer
//   gauntlet bugs                           list the seeded-fault catalogue
//
// Programs are mini-P4 (see README). --bug takes catalogue names from
// `gauntlet bugs`; --targets takes a comma-separated subset of the
// registered back ends (default: all of them).
//
// Argument handling is strict: unknown flags, malformed numbers, missing
// flag values and surplus positionals are usage errors (exit 2), never
// silently ignored.
//
// Exit codes are gateable: commands that *check* something (validate,
// testgen, fuzz, campaign, replay) exit nonzero when they find problems —
// semantic diffs, zero generated tests, campaign findings, packet
// mismatches, still-failing reproducers — so CI scripts can run them
// directly.

#include <chrono>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/cache_file.h"
#include "src/cache/verdict_cache.h"
#include "src/dist/coordinator.h"
#include "src/dist/serve.h"
#include "src/dist/shard.h"
#include "src/frontend/parser.h"
#include "src/frontend/printer.h"
#include "src/gauntlet/campaign.h"
#include "src/obs/coverage.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/progress.h"
#include "src/obs/run_report.h"
#include "src/obs/snapshot.h"
#include "src/obs/trace.h"
#include "src/reduce/reducer.h"
#include "src/runtime/corpus.h"
#include "src/runtime/parallel_campaign.h"
#include "src/target/target.h"
#include "src/testgen/testgen.h"
#include "src/tv/validator.h"
#include "src/typecheck/typecheck.h"

namespace {

using namespace gauntlet;

// A command-line mistake (unknown flag, bad value, wrong arity): reported
// with the usage text and exit code 2, distinct from runtime failures.
class CliUsageError : public std::runtime_error {
 public:
  explicit CliUsageError(const std::string& message) : std::runtime_error(message) {}
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw CompileError("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// A command's parsed arguments: positionals in order, and every occurrence
// of each value-taking flag.
struct ParsedArgs {
  std::vector<std::string> positionals;
  std::map<std::string, std::vector<std::string>> flags;

  bool Has(const std::string& flag) const { return flags.count(flag) > 0; }
  const std::string& Last(const std::string& flag) const { return flags.at(flag).back(); }
};

// Splits a command's arguments (argv[2:]) into positionals, value-taking
// flags and boolean switches. Every `--flag` must be listed in
// `value_flags` (and must have a value: a flag's value is never mistaken
// for a positional — the `campaign --jobs 4` ≠ `campaign 4` trap) or in
// `switch_flags` (recorded with no value); an unknown flag is rejected
// instead of silently ignored, and a trailing value flag with its value
// forgotten fails fast.
ParsedArgs ParseCommandArgs(int argc, char** argv,
                            const std::vector<std::string>& value_flags,
                            size_t max_positionals,
                            const std::vector<std::string>& switch_flags = {}) {
  ParsedArgs parsed;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      parsed.positionals.push_back(arg);
      continue;
    }
    bool is_switch = false;
    for (const std::string& flag : switch_flags) {
      is_switch |= flag == arg;
    }
    if (is_switch) {
      parsed.flags[arg];  // present, no value
      continue;
    }
    bool known = false;
    for (const std::string& flag : value_flags) {
      known |= flag == arg;
    }
    if (!known) {
      throw CliUsageError("unknown flag '" + arg + "' for this command");
    }
    if (i + 1 >= argc) {
      throw CliUsageError("flag '" + arg + "' expects a value");
    }
    parsed.flags[arg].push_back(argv[++i]);
  }
  if (parsed.positionals.size() > max_positionals) {
    throw CliUsageError("unexpected argument '" + parsed.positionals[max_positionals] + "'");
  }
  return parsed;
}

// The two cache switches shared by the validating commands, plus the
// telemetry heartbeat switch, the wall-clock-budget kill switch and the
// incremental-solving A/B switch they all accept.
const std::vector<std::string> kCacheSwitches = {"--no-cache", "--cache-stats", "--progress",
                                                "--no-budgets", "--no-incremental"};

// The telemetry output flags shared by every instrumented command.
const std::vector<std::string> kTelemetryFlags = {"--metrics-out", "--trace-out",
                                                 "--coverage-out"};

std::vector<std::string> WithTelemetryFlags(std::vector<std::string> value_flags) {
  value_flags.insert(value_flags.end(), kTelemetryFlags.begin(), kTelemetryFlags.end());
  return value_flags;
}

// `--no-budgets` zeroes every wall-clock solver budget (0 = unlimited), so
// which pass pairs and paths fit the budget no longer depends on machine
// load — the setting the determinism tests and CI byte-equality gates run
// under. The conflict budget stays: it is deterministic by construction.
//
// `--no-incremental` turns the solver hot path off for A/B runs: no
// assumption-trail reuse in the path-probe solver and no block-summary
// memoization in the validator. Every report byte is identical either way
// (CI diffs the two modes); only the work spent differs.
void ApplySolverSwitches(const ParsedArgs& args, TvOptions& tv, TestGenOptions& testgen) {
  if (args.Has("--no-budgets")) {
    tv.query_time_limit_ms = 0;
    tv.program_budget_ms = 0;
    testgen.query_time_limit_ms = 0;
  }
  if (args.Has("--no-incremental")) {
    tv.memoize_block_summaries = false;
    testgen.incremental_solving = false;
  }
}

// Telemetry destinations parsed from --metrics-out/--trace-out/
// --coverage-out: owns the registry, trace collector and coverage map for
// the command's lifetime and renders them to disk once the command has
// finished. The destructor is a best-effort backstop: a command aborting
// via exception still emits whatever it collected — exactly the runs where
// the telemetry helps debugging.
struct Telemetry {
  explicit Telemetry(const ParsedArgs& args) {
    if (args.Has("--metrics-out")) {
      metrics_path = args.Last("--metrics-out");
    }
    if (args.Has("--trace-out")) {
      trace_path = args.Last("--trace-out");
    }
    if (args.Has("--coverage-out")) {
      coverage_path = args.Last("--coverage-out");
    }
  }

  ~Telemetry() { WriteFiles(/*throw_on_failure=*/false); }

  MetricsRegistry* registry_or_null() { return metrics_path.empty() ? nullptr : &registry; }
  TraceCollector* collector_or_null() { return trace_path.empty() ? nullptr : &collector; }
  CoverageMap* coverage_or_null() { return coverage_path.empty() ? nullptr : &coverage; }

  // Renders both files once; later calls (including the destructor's) are
  // no-ops. Success paths call this so the command exits nonzero when an
  // artifact it promised cannot be written.
  void Write() { WriteFiles(/*throw_on_failure=*/true); }

  void WriteFiles(bool throw_on_failure) {
    if (written_) {
      return;
    }
    written_ = true;
    std::string failed;
    if (!metrics_path.empty()) {
      // Every metrics.json carries the process' own resource footprint
      // (timing section — gauges, so re-recording merges harmlessly).
      RecordProcessSelfStats(registry);
    }
    if (!metrics_path.empty() && !WriteMetricsFile(metrics_path, registry)) {
      failed = metrics_path;
    }
    if (!trace_path.empty() && !WriteTraceFile(trace_path, collector)) {
      failed = trace_path;
    }
    if (!coverage_path.empty() && !WriteCoverageFile(coverage_path, coverage)) {
      failed = coverage_path;
    }
    if (failed.empty()) {
      return;
    }
    if (throw_on_failure) {
      throw CompileError("cannot write telemetry file '" + failed + "'");
    }
    std::fprintf(stderr, "gauntlet: cannot write telemetry file '%s'\n", failed.c_str());
  }

  MetricsRegistry registry;
  TraceCollector collector;
  CoverageMap coverage;
  std::string metrics_path;
  std::string trace_path;
  std::string coverage_path;
  bool written_ = false;
};

// Installs the single-threaded commands' telemetry sinks for a scope (the
// campaign drivers install their own per-worker sinks instead).
struct ScopedTelemetry {
  explicit ScopedTelemetry(Telemetry& telemetry)
      : metrics_sink(telemetry.registry_or_null()),
        coverage_sink(telemetry.coverage_or_null()),
        trace_sink(telemetry.collector_or_null() != nullptr ? telemetry.collector.NewBuffer(0)
                                                            : nullptr) {}
  ScopedMetricsSink metrics_sink;
  ScopedCoverageSink coverage_sink;
  ScopedTraceSink trace_sink;
};

void MaybePrintCacheStats(const ParsedArgs& args, const CacheStats& stats) {
  if (!args.Has("--cache-stats")) {
    return;
  }
  if (args.Has("--no-cache")) {
    // All-zero counters from a disabled cache read as "cache never hit";
    // say what actually happened instead.
    std::fprintf(stderr, "cache: disabled (--no-cache)\n");
    return;
  }
  std::fprintf(stderr, "%s\n", stats.ToString().c_str());
}

// Strict decimal parse; rejects "abc", "4x", out-of-range and empty
// strings instead of the silent-zero behavior of atoi.
long long ParseNumber(const std::string& text, const std::string& what) {
  try {
    size_t consumed = 0;
    const long long value = std::stoll(text, &consumed);
    if (consumed != text.size()) {
      throw std::invalid_argument(text);
    }
    return value;
  } catch (const std::exception&) {
    throw CliUsageError(what + " expects a number, got '" + text + "'");
  }
}

// A count argument (program counts, worker counts): numeric, within int,
// and at least `minimum` — `campaign -5` must be a usage error, not a
// silently empty run.
int ParseCount(const std::string& text, const std::string& what, int minimum) {
  const long long value = ParseNumber(text, what);
  if (value < minimum || value > std::numeric_limits<int>::max()) {
    throw CliUsageError(what + " expects a count >= " + std::to_string(minimum) + ", got '" +
                        text + "'");
  }
  return static_cast<int>(value);
}

BugConfig BugsFromFlags(const ParsedArgs& args) {
  BugConfig bugs;
  if (!args.Has("--bug")) {
    return bugs;
  }
  for (const std::string& name : args.flags.at("--bug")) {
    bool known = false;
    for (const BugInfo& info : BugCatalogue()) {
      if (info.name == name) {
        bugs.Enable(info.id);
        known = true;
      }
    }
    if (!known) {
      throw CliUsageError("unknown --bug '" + name +
                          "'; run `gauntlet bugs` for the catalogue");
    }
  }
  return bugs;
}

// Parses `--targets bmv2,tofino,...` occurrences into registry names,
// validating each against the registered back ends.
std::vector<std::string> TargetsFromFlags(const ParsedArgs& args) {
  std::vector<std::string> targets;
  if (!args.Has("--targets")) {
    return targets;
  }
  for (const std::string& list : args.flags.at("--targets")) {
    std::stringstream stream(list);
    std::string name;
    while (std::getline(stream, name, ',')) {
      if (name.empty()) {
        continue;
      }
      if (TargetRegistry::Find(name) == nullptr) {
        throw CliUsageError("unknown target '" + name + "'; registered targets: " +
                            TargetRegistry::JoinedNames());
      }
      targets.push_back(name);
    }
  }
  if (targets.empty()) {
    throw CliUsageError("--targets expects a comma-separated list of registered targets");
  }
  return targets;
}

int CmdBugs() {
  std::printf("%-36s %-9s %-16s %-22s %s\n", "name", "kind", "location", "component",
              "models");
  for (const BugInfo& info : BugCatalogue()) {
    std::printf("%-36s %-9s %-16s %-22s %s\n", info.name,
                info.kind == BugKind::kCrash ? "crash" : "semantic",
                BugLocationToString(info.location).c_str(), info.pass_name, info.paper_ref);
  }
  return 0;
}

int CmdCompile(const std::string& path, const BugConfig& bugs) {
  auto program = Parser::ParseString(ReadFile(path));
  TypeCheck(*program, TypeCheckOptionsFromBugs(bugs));
  PassManager::StandardPipeline().Run(
      *program, bugs, [](const std::string& pass_name, const Program& snapshot) {
        std::printf("---- after %s ----\n%s\n", pass_name.c_str(),
                    PrintProgram(snapshot).c_str());
      });
  std::printf("---- final program ----\n%s", PrintProgram(*program).c_str());
  return 0;
}

int CmdValidate(const std::string& path, const BugConfig& bugs, const ParsedArgs& args) {
  Telemetry telemetry(args);
  auto program = Parser::ParseString(ReadFile(path));
  TvOptions tv_options;
  TestGenOptions unused_testgen_options;
  ApplySolverSwitches(args, tv_options, unused_testgen_options);
  const TranslationValidator validator(PassManager::StandardPipeline(), tv_options);
  ValidationCache cache;
  ValidationCache* cache_ptr = args.Has("--no-cache") ? nullptr : &cache;
  if (args.Has("--progress")) {
    std::fprintf(stderr, "progress: validating %s\n", path.c_str());
  }
  TvReport report;
  {
    ScopedTelemetry sinks(telemetry);
    report = validator.Validate(*program, bugs, /*stop_after_pass=*/{}, cache_ptr);
  }
  if (report.crashed) {
    std::printf("CRASH: %s\n", report.crash_message.c_str());
  }
  int problems = report.crashed ? 1 : 0;
  for (const TvPassResult& result : report.pass_results) {
    std::printf("%-24s %s%s%s\n", result.pass_name.c_str(),
                TvVerdictToString(result.verdict).c_str(), result.detail.empty() ? "" : " — ",
                result.detail.c_str());
    if (result.verdict == TvVerdict::kSemanticDiff) {
      ++problems;
      for (const auto& [name, value] : result.counterexample.bit_values) {
        if (name.find("undef") == std::string::npos) {
          std::printf("    witness %s = %s\n", name.c_str(), value.ToString().c_str());
        }
      }
    } else if (result.verdict == TvVerdict::kInvalidEmit) {
      // An emitted program that fails to re-parse/re-typecheck is a
      // definite compiler bug (campaign.cc counts it as a crash finding).
      ++problems;
    }
  }
  std::printf("%zu changed-pass pairs validated, %d problem%s found\n",
              report.pass_results.size(), problems, problems == 1 ? "" : "s");
  if (args.Has("--progress")) {
    std::fprintf(stderr, "progress: %zu pass pairs validated, done\n",
                 report.pass_results.size());
  }
  if (cache_ptr != nullptr && telemetry.registry_or_null() != nullptr) {
    cache.Stats().RecordMetrics(telemetry.registry);
  }
  MaybePrintCacheStats(args, cache.Stats());
  telemetry.Write();
  return problems == 0 ? 0 : 1;
}

int CmdTestgen(const std::string& path, const ParsedArgs& args) {
  Telemetry telemetry(args);
  auto program = Parser::ParseString(ReadFile(path));
  TypeCheck(*program);
  ValidationCache cache;
  ValidationCache* cache_ptr = args.Has("--no-cache") ? nullptr : &cache;
  if (args.Has("--progress")) {
    std::fprintf(stderr, "progress: enumerating paths in %s\n", path.c_str());
  }
  TvOptions unused_tv_options;
  TestGenOptions testgen_options;
  ApplySolverSwitches(args, unused_tv_options, testgen_options);
  std::vector<PacketTest> tests;
  try {
    ScopedTelemetry sinks(telemetry);
    tests = TestCaseGenerator(testgen_options).Generate(*program, cache_ptr);
  } catch (const UnsupportedError& error) {
    std::fprintf(stderr, "testgen: unsupported program: %s\n", error.what());
    return 1;
  }
  // STF text on stdout: redirect into a .stf file to get an on-disk
  // reproducer that ParseStf reads back.
  std::printf("%s", EmitStf(tests).c_str());
  std::fprintf(stderr, "%zu tests generated\n", tests.size());
  if (args.Has("--progress")) {
    std::fprintf(stderr, "progress: %zu tests generated, done\n", tests.size());
  }
  if (cache_ptr != nullptr && telemetry.registry_or_null() != nullptr) {
    cache.Stats().RecordMetrics(telemetry.registry);
  }
  MaybePrintCacheStats(args, cache.Stats());
  telemetry.Write();
  // No tests means no coverage — scripts piping this into a replay harness
  // must be able to gate on it.
  return tests.empty() ? 1 : 0;
}

void PrintReport(const CampaignReport& report) {
  for (const Finding& finding : report.findings) {
    std::printf("prog %3d  %-22s %-9s %-24s %s\n", finding.program_index,
                DetectionMethodToString(finding.method).c_str(),
                finding.kind == BugKind::kCrash ? "crash" : "semantic",
                finding.component.c_str(),
                finding.attributed.has_value() ? BugIdToString(*finding.attributed).c_str()
                                               : "(unattributed)");
  }
  std::printf("%d programs, %zu findings, %zu distinct bugs, %d suspicious reports\n",
              report.programs_generated, report.findings.size(), report.DistinctCount(),
              report.undef_divergences);
}

// Wires the telemetry destinations and the optional --progress heartbeat
// into a (serial or parallel) campaign's options. The meter outlives the
// run — callers Finish() it before printing the report so the stderr
// heartbeat never interleaves with the stdout report.
std::unique_ptr<ProgressMeter> WireCampaignTelemetry(const ParsedArgs& args,
                                                     Telemetry& telemetry,
                                                     CampaignOptions& options) {
  options.metrics = telemetry.registry_or_null();
  options.trace = telemetry.collector_or_null();
  options.coverage = telemetry.coverage_or_null();
  std::unique_ptr<ProgressMeter> meter;
  if (args.Has("--progress")) {
    meter = std::make_unique<ProgressMeter>("programs",
                                            static_cast<uint64_t>(options.num_programs));
    ProgressMeter* raw = meter.get();
    options.progress = [raw](uint64_t done, uint64_t findings) { raw->Tick(done, findings); };
  }
  return meter;
}

int CmdFuzz(int argc, char** argv) {
  const ParsedArgs args =
      ParseCommandArgs(argc, argv, WithTelemetryFlags({"--bug", "--targets"}),
                       /*max_positionals=*/2, kCacheSwitches);
  const BugConfig bugs = BugsFromFlags(args);
  Telemetry telemetry(args);
  CampaignOptions options;
  options.targets = TargetsFromFlags(args);
  options.use_cache = !args.Has("--no-cache");
  ApplySolverSwitches(args, options.tv, options.testgen);
  if (args.positionals.size() >= 1) {
    options.num_programs = ParseCount(args.positionals[0], "N", /*minimum=*/0);
  }
  if (args.positionals.size() >= 2) {
    options.seed = static_cast<uint64_t>(ParseNumber(args.positionals[1], "seed"));
  }
  const std::unique_ptr<ProgressMeter> meter = WireCampaignTelemetry(args, telemetry, options);
  CacheStats stats;
  const CampaignReport report = Campaign(options).Run(bugs, &stats);
  if (meter != nullptr) {
    meter->Finish(static_cast<uint64_t>(report.programs_generated), report.findings.size());
  }
  PrintReport(report);
  MaybePrintCacheStats(args, stats);
  telemetry.Write();
  return report.findings.empty() ? 0 : 1;
}

// `campaign --shards S`: the distributed path (src/dist/). The coordinator
// owns the topology; the merged deterministic output is byte-identical to
// the single-process run for any shard count — the CI shard-identity gate.
int RunCampaignSharded(const ParsedArgs& args, const BugConfig& bugs, Telemetry& telemetry,
                       ParallelCampaignOptions& parallel) {
  if (args.Has("--trace-out")) {
    throw CliUsageError("--trace-out is per-process; it cannot be combined with --shards");
  }
  ShardCoordinatorOptions options;
  options.campaign = parallel.campaign;
  options.shards = ParseCount(args.Last("--shards"), "--shards", /*minimum=*/1);
  options.jobs = parallel.jobs;
  options.corpus_dir = parallel.corpus_dir;
  options.cache_file = parallel.cache_file;
  options.status_dir = parallel.status_dir;
  options.snapshot_interval_ms = parallel.snapshot_interval_ms;
  if (args.Has("--shard-dir")) {
    options.scratch_dir = args.Last("--shard-dir");
  }
  if (args.Has("--worker")) {
    options.worker_binary = args.Last("--worker");
    // Children parse their own campaign flags; forward the ones the
    // coordinator does not own.
    if (args.Has("--bug")) {
      for (const std::string& name : args.flags.at("--bug")) {
        options.worker_flags.push_back("--bug");
        options.worker_flags.push_back(name);
      }
    }
    if (args.Has("--targets")) {
      for (const std::string& list : args.flags.at("--targets")) {
        options.worker_flags.push_back("--targets");
        options.worker_flags.push_back(list);
      }
    }
    if (args.Has("--no-cache")) {
      options.worker_flags.push_back("--no-cache");
    }
    if (args.Has("--no-budgets")) {
      options.worker_flags.push_back("--no-budgets");
    }
    if (args.Has("--no-incremental")) {
      options.worker_flags.push_back("--no-incremental");
    }
  }
  const std::unique_ptr<ProgressMeter> meter =
      WireCampaignTelemetry(args, telemetry, options.campaign);
  const CoordinatorOutcome outcome = RunShardCoordinator(options, bugs);
  if (meter != nullptr) {
    meter->Finish(static_cast<uint64_t>(outcome.report.programs_generated),
                  outcome.report.findings.size());
  }
  PrintReport(outcome.report);
  // Advisory only, and on stderr: the stdout report stays byte-identical
  // to the single-process run.
  std::fprintf(stderr, "%s", outcome.suggestion.ToString().c_str());
  MaybePrintCacheStats(args, outcome.cache_stats);
  telemetry.Write();
  if (!options.corpus_dir.empty()) {
    std::fprintf(stderr, "corpus: %d reproducers under %s (all runs)\n",
                 CountCorpus(options.corpus_dir), options.corpus_dir.c_str());
  }
  return outcome.report.findings.empty() ? 0 : 1;
}

int CmdCampaign(int argc, char** argv) {
  const ParsedArgs args = ParseCommandArgs(
      argc, argv,
      WithTelemetryFlags({"--jobs", "--corpus", "--bug", "--targets", "--cache-file",
                          "--shards", "--shard-dir", "--worker", "--status-dir",
                          "--snapshot-interval"}),
      /*max_positionals=*/2, kCacheSwitches);
  const BugConfig bugs = BugsFromFlags(args);
  Telemetry telemetry(args);
  ParallelCampaignOptions options;
  options.campaign.targets = TargetsFromFlags(args);
  options.campaign.use_cache = !args.Has("--no-cache");
  ApplySolverSwitches(args, options.campaign.tv, options.campaign.testgen);
  if (args.Has("--snapshot-interval") && !args.Has("--status-dir")) {
    throw CliUsageError("--snapshot-interval only applies with --status-dir");
  }
  if (args.Has("--status-dir")) {
    options.status_dir = args.Last("--status-dir");
    if (args.Has("--snapshot-interval")) {
      options.snapshot_interval_ms =
          ParseCount(args.Last("--snapshot-interval"), "--snapshot-interval", /*minimum=*/1);
    }
  }
  if (args.Has("--cache-file")) {
    if (args.Has("--no-cache")) {
      throw CliUsageError("--cache-file needs the cache; drop --no-cache");
    }
    options.cache_file = args.Last("--cache-file");
  }
  if (args.positionals.size() >= 1) {
    options.campaign.num_programs = ParseCount(args.positionals[0], "N", /*minimum=*/0);
  }
  if (args.positionals.size() >= 2) {
    options.campaign.seed = static_cast<uint64_t>(ParseNumber(args.positionals[1], "seed"));
  }
  if (args.Has("--jobs")) {
    options.jobs = ParseCount(args.Last("--jobs"), "--jobs", /*minimum=*/1);
  }
  if (args.Has("--corpus")) {
    options.corpus_dir = args.Last("--corpus");
  }
  if ((args.Has("--worker") || args.Has("--shard-dir")) && !args.Has("--shards")) {
    throw CliUsageError("--worker/--shard-dir only apply to a sharded campaign (--shards)");
  }
  if (args.Has("--shards")) {
    return RunCampaignSharded(args, bugs, telemetry, options);
  }
  const std::unique_ptr<ProgressMeter> meter =
      WireCampaignTelemetry(args, telemetry, options.campaign);
  CacheStats stats;
  const CampaignReport report = ParallelCampaign(options).Run(bugs, &stats);
  if (meter != nullptr) {
    meter->Finish(static_cast<uint64_t>(report.programs_generated), report.findings.size());
  }
  PrintReport(report);
  MaybePrintCacheStats(args, stats);
  telemetry.Write();
  if (!options.corpus_dir.empty()) {
    // Stat-only count; the corpus dedups across runs, so the directory can
    // legitimately hold more reproducers than this run's findings.
    std::fprintf(stderr, "corpus: %d reproducers under %s (all runs)\n",
                 CountCorpus(options.corpus_dir), options.corpus_dir.c_str());
  }
  return report.findings.empty() ? 0 : 1;
}

// The coordinator's child process: one shard of the global index space,
// its result serialized to --result-out. Exits 0 whether or not it found
// anything — findings are data for the coordinator, which owns the
// campaign-level exit code.
int CmdShardWorker(int argc, char** argv) {
  const ParsedArgs args = ParseCommandArgs(
      argc, argv,
      WithTelemetryFlags({"--shard-begin", "--shard-end", "--seed", "--jobs", "--result-out",
                          "--corpus", "--cache-file", "--bug", "--targets", "--status-dir",
                          "--status-role", "--snapshot-interval"}),
      /*max_positionals=*/0, {"--no-cache", "--no-budgets", "--no-incremental"});
  for (const char* required : {"--shard-begin", "--shard-end", "--seed", "--result-out"}) {
    if (!args.Has(required)) {
      throw CliUsageError(std::string("shard-worker requires ") + required);
    }
  }
  const BugConfig bugs = BugsFromFlags(args);
  Telemetry telemetry(args);
  ShardWorkerOptions options;
  options.range.begin = ParseCount(args.Last("--shard-begin"), "--shard-begin", /*minimum=*/0);
  options.range.end = ParseCount(args.Last("--shard-end"), "--shard-end", /*minimum=*/0);
  if (options.range.end < options.range.begin) {
    throw CliUsageError("--shard-end must be >= --shard-begin");
  }
  options.campaign.seed = static_cast<uint64_t>(ParseNumber(args.Last("--seed"), "--seed"));
  options.campaign.targets = TargetsFromFlags(args);
  options.campaign.use_cache = !args.Has("--no-cache");
  ApplySolverSwitches(args, options.campaign.tv, options.campaign.testgen);
  if (args.Has("--jobs")) {
    options.jobs = ParseCount(args.Last("--jobs"), "--jobs", /*minimum=*/1);
  }
  if (args.Has("--corpus")) {
    options.corpus_dir = args.Last("--corpus");
  }
  if (args.Has("--cache-file")) {
    if (args.Has("--no-cache")) {
      throw CliUsageError("--cache-file needs the cache; drop --no-cache");
    }
    options.cache_file = args.Last("--cache-file");
  }
  if (args.Has("--status-dir")) {
    options.status_dir = args.Last("--status-dir");
    if (args.Has("--status-role")) {
      options.status_role = args.Last("--status-role");
    }
    if (args.Has("--snapshot-interval")) {
      options.snapshot_interval_ms =
          ParseCount(args.Last("--snapshot-interval"), "--snapshot-interval", /*minimum=*/1);
    }
  } else if (args.Has("--status-role") || args.Has("--snapshot-interval")) {
    throw CliUsageError("--status-role/--snapshot-interval only apply with --status-dir");
  }
  options.trace = telemetry.collector_or_null();
  const ShardResult result = RunShardWorker(options, bugs);
  SaveShardResultFile(args.Last("--result-out"), result);
  // The result file above stays *unfolded* (the coordinator folds the
  // cross-shard merge exactly once); the side-channel telemetry files are a
  // per-shard human view, so they get this shard's own fold.
  if (telemetry.registry_or_null() != nullptr) {
    telemetry.registry.MergeFrom(result.metrics);
    result.report.RecordMetrics(telemetry.registry);
    if (options.campaign.use_cache) {
      result.cache_stats.RecordMetrics(telemetry.registry);
    }
  }
  if (telemetry.coverage_or_null() != nullptr) {
    telemetry.coverage.MergeFrom(result.coverage);
    result.report.RecordCoverage(telemetry.coverage, bugs);
  }
  telemetry.Write();
  return 0;
}

// `gauntlet serve`: the long-lived submission service (src/dist/serve).
// The server owns its telemetry files (rewritten atomically on every
// status flush and once more on exit), so a SIGTERM'd session still leaves
// loadable metrics/coverage/trace artifacts behind.
int CmdServe(int argc, char** argv) {
  const ParsedArgs args = ParseCommandArgs(
      argc, argv,
      WithTelemetryFlags({"--socket", "--corpus", "--bug", "--targets", "--max-requests",
                          "--status-dir", "--snapshot-interval"}),
      /*max_positionals=*/0, kCacheSwitches);
  if (!args.Has("--socket")) {
    throw CliUsageError("serve requires --socket PATH");
  }
  if (args.Has("--snapshot-interval") && !args.Has("--status-dir")) {
    throw CliUsageError("--snapshot-interval only applies with --status-dir");
  }
  const BugConfig bugs = BugsFromFlags(args);
  ServeOptions options;
  options.socket_path = args.Last("--socket");
  options.campaign.targets = TargetsFromFlags(args);
  options.campaign.use_cache = !args.Has("--no-cache");
  ApplySolverSwitches(args, options.campaign.tv, options.campaign.testgen);
  if (args.Has("--metrics-out")) {
    options.metrics_out = args.Last("--metrics-out");
  }
  if (args.Has("--coverage-out")) {
    options.coverage_out = args.Last("--coverage-out");
  }
  if (args.Has("--trace-out")) {
    options.trace_out = args.Last("--trace-out");
  }
  if (args.Has("--status-dir")) {
    options.status_dir = args.Last("--status-dir");
    if (args.Has("--snapshot-interval")) {
      options.snapshot_interval_ms =
          ParseCount(args.Last("--snapshot-interval"), "--snapshot-interval", /*minimum=*/1);
    }
  }
  if (args.Has("--corpus")) {
    options.corpus_dir = args.Last("--corpus");
  }
  if (args.Has("--max-requests")) {
    options.max_requests = ParseCount(args.Last("--max-requests"), "--max-requests",
                                      /*minimum=*/1);
  }
  options.install_signal_handlers = true;
  GauntletServer server(std::move(options), bugs);
  server.Start();
  std::fprintf(stderr, "serving on %s\n", server.socket_path().c_str());
  const int served = server.Run();
  std::fprintf(stderr, "served %d submission%s, shutting down\n", served,
               served == 1 ? "" : "s");
  return 0;
}

// `gauntlet status <dir>`: the fleet inspector. Reads the snapshot +
// heartbeat artifacts a --status-dir run publishes and prints a dashboard
// (or --json for machines). Exit 0 healthy, 1 on any stalled/dead/corrupt
// worker; --watch polls until the fleet completes or turns unhealthy.
int CmdStatus(int argc, char** argv) {
  const ParsedArgs args = ParseCommandArgs(argc, argv, {"--interval", "--stall-ms"},
                                           /*max_positionals=*/1, {"--json", "--watch"});
  if (args.positionals.size() != 1) {
    throw CliUsageError("status expects exactly one <status-dir>");
  }
  if (args.Has("--interval") && !args.Has("--watch")) {
    throw CliUsageError("--interval only applies with --watch");
  }
  const std::string status_dir = args.positionals[0];
  uint64_t stall_ms = kDefaultStallThresholdMs;
  if (args.Has("--stall-ms")) {
    stall_ms = static_cast<uint64_t>(ParseCount(args.Last("--stall-ms"), "--stall-ms",
                                                /*minimum=*/1));
  }
  int interval_ms = 1000;
  if (args.Has("--interval")) {
    interval_ms = ParseCount(args.Last("--interval"), "--interval", /*minimum=*/1);
  }
  const bool watch = args.Has("--watch");
  const bool json = args.Has("--json");
  for (;;) {
    const FleetStatus fleet = CollectFleetStatus(status_dir, stall_ms);
    if (fleet.workers.empty()) {
      // Usage-grade (exit 2): a directory with no status artifacts means
      // the argument pointed at the wrong place, like a typo'd corpus path.
      throw CliUsageError("no status artifacts under '" + status_dir +
                          "' (expected snapshot.json/heartbeat.json from a --status-dir run)");
    }
    std::printf("%s", json ? FleetStatusJson(fleet).c_str() : FleetStatusText(fleet).c_str());
    std::fflush(stdout);
    if (!fleet.healthy()) {
      return 1;
    }
    if (!watch || fleet.complete()) {
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

// `gauntlet submit`: the serve-mode client. Prints the server's JSON
// response to stdout; exits 0 on a clean verdict (or acknowledged
// shutdown), 1 when the server reported findings or an error.
int CmdSubmit(int argc, char** argv) {
  const ParsedArgs args =
      ParseCommandArgs(argc, argv, {"--socket", "--bug", "--targets"},
                       /*max_positionals=*/1, {"--shutdown"});
  if (!args.Has("--socket")) {
    throw CliUsageError("submit requires --socket PATH");
  }
  const std::string socket_path = args.Last("--socket");
  std::string payload;
  if (args.Has("--shutdown")) {
    if (!args.positionals.empty()) {
      throw CliUsageError("submit --shutdown takes no program");
    }
    payload = BuildShutdownPayload();
  } else {
    if (args.positionals.size() != 1) {
      throw CliUsageError("submit expects exactly one <file.p4> (or --shutdown)");
    }
    std::vector<std::string> bug_names;
    if (args.Has("--bug")) {
      bug_names = args.flags.at("--bug");
    }
    payload = BuildSubmitPayload(ReadFile(args.positionals[0]), bug_names,
                                 TargetsFromFlags(args));
  }
  const std::string response = SendServeRequest(socket_path, payload);
  std::printf("%s\n", response.c_str());
  const bool ok = response.find("\"status\":\"ok\"") != std::string::npos ||
                  response.find("\"status\":\"shutting-down\"") != std::string::npos;
  const bool clean = response.find("\"findings\":[]") != std::string::npos;
  if (!ok) {
    return 1;
  }
  return args.Has("--shutdown") || clean ? 0 : 1;
}

int CmdReplay(int argc, char** argv) {
  const ParsedArgs args = ParseCommandArgs(
      argc, argv, WithTelemetryFlags({"--bug", "--targets", "--corpus", "--cache-file"}),
      /*max_positionals=*/2, {"--progress"});
  const BugConfig bugs = BugsFromFlags(args);
  Telemetry telemetry(args);
  const std::vector<std::string> targets = TargetsFromFlags(args);
  if (args.Has("--cache-file")) {
    // Replay performs no solver queries, so the warm-start file is loaded
    // (validating it — a corrupt *or missing* file must fail the CI job
    // that carries it, not the next campaign) and left unchanged on disk.
    ValidationCache cache;
    if (!LoadValidationCacheFile(args.Last("--cache-file"), cache)) {
      throw CompileError("cache file '" + args.Last("--cache-file") + "' does not exist");
    }
  }

  // Bulk mode: replay every stored triple in a corpus directory and gate
  // on the summary (the corpus-driven regression run).
  if (args.Has("--corpus")) {
    if (!args.positionals.empty()) {
      throw CliUsageError("replay --corpus takes no positional arguments");
    }
    const std::string directory = args.Last("--corpus");
    if (CountCorpus(directory) == 0) {
      // Usage-grade error (exit 2), not a replay failure: an empty or
      // manifest-less directory means the flag pointed at the wrong place,
      // the same class of mistake as a typo'd path.
      throw CliUsageError("corpus '" + directory +
                          "' holds no reproducer triples (empty or not a corpus directory)");
    }
    std::unique_ptr<ProgressMeter> meter;
    std::function<void(int, int)> progress;
    if (args.Has("--progress")) {
      meter = std::make_unique<ProgressMeter>(
          "reproducers", static_cast<uint64_t>(CountCorpus(directory)));
      ProgressMeter* raw = meter.get();
      progress = [raw](int done, int failed) {
        raw->Tick(static_cast<uint64_t>(done), static_cast<uint64_t>(failed));
      };
    }
    CorpusReplaySummary summary;
    {
      ScopedTelemetry sinks(telemetry);
      summary = ReplayCorpus(directory, bugs, targets, progress);
    }
    if (meter != nullptr) {
      meter->Finish(static_cast<uint64_t>(summary.entries),
                    static_cast<uint64_t>(summary.failed_entries));
    }
    if (summary.entries == 0) {
      // A regression gate that replayed nothing must not green-light: a
      // typo'd path and a never-populated corpus both look like this.
      throw CompileError("corpus '" + directory + "' holds no reproducer triples");
    }
    for (const CorpusReplayResult& result : summary.results) {
      if (result.outcome.passed()) {
        std::printf("PASS %-40s (%d tests)\n", result.key.c_str(),
                    result.outcome.tests_run);
      } else {
        std::printf("FAIL %-40s %s\n", result.key.c_str(),
                    result.outcome.failure_details.empty()
                        ? ""
                        : result.outcome.failure_details[0].c_str());
      }
    }
    std::printf("%d reproducers replayed, %d still failing\n", summary.entries,
                summary.failed_entries);
    telemetry.Write();
    return summary.passed() ? 0 : 1;
  }

  if (args.positionals.size() != 2) {
    throw CliUsageError("replay expects <file.p4> <file.stf> (or --corpus DIR)");
  }
  ReplayOutcome outcome;
  {
    ScopedTelemetry sinks(telemetry);
    outcome = ReplayStfText(ReadFile(args.positionals[0]), ReadFile(args.positionals[1]), bugs,
                            targets);
  }
  for (const std::string& detail : outcome.failure_details) {
    std::printf("FAIL %s\n", detail.c_str());
  }
  std::printf("%d tests replayed, %d mismatch%s\n", outcome.tests_run, outcome.failures,
              outcome.failures == 1 ? "" : "es");
  telemetry.Write();
  return outcome.passed() ? 0 : 1;
}

CoverageMap LoadCoverage(const std::string& path) {
  CoverageMap map;
  std::string error;
  if (!ParseCoverageJson(ReadFile(path), &map, &error)) {
    throw CompileError("cannot parse coverage file '" + path + "': " + error);
  }
  return map;
}

// `gauntlet coverage <file>` renders one snapshot (with its blind-spot
// section); `gauntlet coverage <before> <after>` diffs two snapshots and
// gates on deterministic differences — the CI jobs-1-vs-jobs-8 identity
// check. `--require-detected` turns the single-file report into the
// blind-spot gate: every seeded fault must have been exercised and detected.
int CmdCoverage(int argc, char** argv) {
  const ParsedArgs args = ParseCommandArgs(argc, argv, {}, /*max_positionals=*/2,
                                           {"--require-detected"});
  if (args.positionals.empty()) {
    throw CliUsageError("coverage expects <coverage.json> [<after.json>]");
  }
  if (args.positionals.size() == 2) {
    if (args.Has("--require-detected")) {
      throw CliUsageError("--require-detected applies to a single snapshot, not a diff");
    }
    const CoverageDiff diff =
        DiffCoverage(LoadCoverage(args.positionals[0]), LoadCoverage(args.positionals[1]));
    std::printf("%s", diff.text.c_str());
    return diff.deterministic_differences == 0 ? 0 : 1;
  }
  const CoverageMap map = LoadCoverage(args.positionals[0]);
  std::printf("%s", CoverageReportText(map).c_str());
  if (args.Has("--require-detected")) {
    std::string violations;
    const int count = CoverageBlindSpotViolations(map, &violations);
    if (count > 0) {
      std::fprintf(stderr, "%s", violations.c_str());
      std::fprintf(stderr, "coverage: %d blind-spot violation%s\n", count,
                   count == 1 ? "" : "s");
      return 1;
    }
  }
  return 0;
}

int CmdReduce(const std::string& path, const BugConfig& bugs) {
  auto program = Parser::ParseString(ReadFile(path));
  // Pick the oracle automatically: crash if any buggy back-end compile
  // crashes, otherwise a semantic-diff oracle over any pass.
  InterestingnessOracle oracle;
  std::string crash_needle;
  bool rejected = false;
  for (const Target* target : TargetRegistry::All()) {
    try {
      target->Compile(*program, bugs);
    } catch (const CompilerBugError& error) {
      crash_needle = error.what();
      break;
    } catch (const CompileError&) {
      rejected = true;
    }
  }
  if (!crash_needle.empty()) {
    // Reduce against the leading assertion text.
    if (crash_needle.size() > 40) {
      crash_needle = crash_needle.substr(0, 40);
    }
    oracle = CrashOracle(bugs, crash_needle);
  } else if (rejected) {
    oracle = [&bugs](const Program& candidate) {
      for (const Target* target : TargetRegistry::All()) {
        try {
          target->Compile(candidate, bugs);
        } catch (const CompileError&) {
          return true;
        } catch (const std::exception&) {
          return false;
        }
      }
      return false;
    };
  } else {
    oracle = SemanticDiffOracle(bugs, "");
  }
  const ReductionResult result = ReduceProgram(*program, oracle);
  std::printf("%s", PrintProgram(*result.program).c_str());
  std::fprintf(stderr, "reduced %zu -> %zu chars in %d oracle calls\n", result.original_size,
               result.reduced_size, result.oracle_calls);
  return 0;
}

int Usage(std::FILE* out) {
  const std::string targets = TargetRegistry::JoinedNames();
  std::fprintf(out,
               "usage: gauntlet <command> [args]\n"
               "  compile <file.p4> [--bug B ...]\n"
               "  validate <file.p4> [--bug B ...] [--no-cache] [--cache-stats]\n"
               "  testgen <file.p4> [--no-cache] [--cache-stats]\n"
               "  fuzz [N] [seed] [--bug B ...] [--targets T,...] [--no-cache] "
               "[--cache-stats]\n"
               "  campaign [N] [seed] [--jobs J] [--corpus DIR] [--bug B ...] "
               "[--targets T,...] [--no-cache] [--cache-stats] [--cache-file F]\n"
               "  campaign ... --shards S [--shard-dir DIR] [--worker BIN]\n"
               "  campaign ... --status-dir DIR [--snapshot-interval MS]\n"
               "  shard-worker --shard-begin B --shard-end E --seed S --result-out F\n"
               "               [--jobs J] [--corpus DIR] [--cache-file F] [--bug B ...]\n"
               "               [--status-dir DIR [--status-role R] [--snapshot-interval MS]]\n"
               "  serve --socket PATH [--corpus DIR] [--bug B ...] [--targets T,...]\n"
               "        [--max-requests N] [--status-dir DIR [--snapshot-interval MS]]\n"
               "  submit <file.p4> --socket PATH [--bug B ...] [--targets T,...]\n"
               "  submit --shutdown --socket PATH\n"
               "  status <status-dir> [--json] [--watch] [--interval MS] [--stall-ms MS]\n"
               "  replay <file.p4> <file.stf> [--bug B ...] [--targets T,...] "
               "[--cache-file F]\n"
               "  replay --corpus DIR [--bug B ...] [--targets T,...] [--cache-file F]\n"
               "  reduce <file.p4> --bug B [...]\n"
               "  coverage <coverage.json> [--require-detected]\n"
               "  coverage <before.json> <after.json>\n"
               "  bugs\n"
               "\n"
               "registered targets: %s   (--targets defaults to all of them)\n"
               "--bug names come from `gauntlet bugs`; --jobs must be >= 1\n"
               "validation memoization is on by default: --no-cache disables it,\n"
               "--cache-stats prints hit/reuse counters to stderr\n"
               "--cache-file persists blast templates + per-program verdicts across\n"
               "runs (campaign reads and rewrites it; replay only validates it)\n"
               "--no-budgets (validate/testgen/fuzz/campaign) lifts the wall-clock\n"
               "solver budgets so reports do not depend on machine load\n"
               "--no-incremental (same commands) disables the incremental solver hot\n"
               "path (assumption-trail reuse + block-summary memoization); reports\n"
               "are byte-identical either way, only the work spent differs\n"
               "telemetry (validate/testgen/fuzz/campaign/replay):\n"
               "  --metrics-out F   write a versioned metrics.json run report\n"
               "  --trace-out F     write Chrome/Perfetto trace-event JSON\n"
               "  --coverage-out F  write a semantic coverage.json snapshot\n"
               "  --progress        throttled heartbeat on stderr\n"
               "`coverage` renders a snapshot (one file; --require-detected gates on\n"
               "blind spots) or diffs two; a diff exits 1 on any deterministic change\n"
               "--shards partitions [0,N) into S contiguous shards; merged output is\n"
               "byte-identical to the single-process run (--worker runs shards as\n"
               "child processes, --shard-dir keeps per-shard artifacts)\n"
               "`serve` accepts P4 programs over a unix socket and streams JSON\n"
               "verdicts; `submit` is its client (exit 0 clean, 1 on findings);\n"
               "SIGTERM/SIGINT drain serve gracefully (sinks flushed before exit)\n"
               "--status-dir (campaign/shard-worker/serve) publishes atomic live\n"
               "snapshot.json + heartbeat.json every --snapshot-interval ms;\n"
               "`status` reads them: a per-worker dashboard with health verdicts\n"
               "(exit 1 on stalled/dead/corrupt workers; --watch polls until the\n"
               "fleet completes, --stall-ms tunes the stall threshold)\n",
               targets.c_str());
  return out == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage(stderr);
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    return Usage(stdout);
  }
  try {
    if (command == "bugs") {
      ParseCommandArgs(argc, argv, {}, /*max_positionals=*/0);
      return CmdBugs();
    }
    if (command == "compile") {
      const ParsedArgs args = ParseCommandArgs(argc, argv, {"--bug"}, /*max_positionals=*/1);
      if (args.positionals.size() != 1) {
        throw CliUsageError("compile expects exactly one <file.p4>");
      }
      return CmdCompile(args.positionals[0], BugsFromFlags(args));
    }
    if (command == "validate") {
      const ParsedArgs args = ParseCommandArgs(argc, argv, WithTelemetryFlags({"--bug"}),
                                               /*max_positionals=*/1, kCacheSwitches);
      if (args.positionals.size() != 1) {
        throw CliUsageError("validate expects exactly one <file.p4>");
      }
      return CmdValidate(args.positionals[0], BugsFromFlags(args), args);
    }
    if (command == "testgen") {
      const ParsedArgs args = ParseCommandArgs(argc, argv, WithTelemetryFlags({}),
                                               /*max_positionals=*/1, kCacheSwitches);
      if (args.positionals.size() != 1) {
        throw CliUsageError("testgen expects exactly one <file.p4>");
      }
      return CmdTestgen(args.positionals[0], args);
    }
    if (command == "fuzz") {
      return CmdFuzz(argc, argv);
    }
    if (command == "campaign") {
      return CmdCampaign(argc, argv);
    }
    if (command == "shard-worker") {
      return CmdShardWorker(argc, argv);
    }
    if (command == "serve") {
      return CmdServe(argc, argv);
    }
    if (command == "submit") {
      return CmdSubmit(argc, argv);
    }
    if (command == "status") {
      return CmdStatus(argc, argv);
    }
    if (command == "replay") {
      return CmdReplay(argc, argv);
    }
    if (command == "coverage") {
      return CmdCoverage(argc, argv);
    }
    if (command == "reduce") {
      const ParsedArgs args = ParseCommandArgs(argc, argv, {"--bug"}, /*max_positionals=*/1);
      if (args.positionals.size() != 1) {
        throw CliUsageError("reduce expects exactly one <file.p4>");
      }
      return CmdReduce(args.positionals[0], BugsFromFlags(args));
    }
  } catch (const CliUsageError& error) {
    std::fprintf(stderr, "gauntlet: %s\n", error.what());
    return Usage(stderr);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "gauntlet: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "gauntlet: unknown command '%s'\n", command.c_str());
  return Usage(stderr);
}
