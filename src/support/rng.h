#ifndef SRC_SUPPORT_RNG_H_
#define SRC_SUPPORT_RNG_H_

#include <cstdint>
#include <vector>

#include "src/support/error.h"

namespace gauntlet {

// Deterministic pseudo-random source (xoshiro256**, seeded via splitmix64).
// Every randomized component of the system (program generator, campaign
// driver, workload synthesis) draws from one of these so that entire
// bug-finding campaigns are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    GAUNTLET_BUG_CHECK(bound > 0, "Rng::Below with zero bound");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    GAUNTLET_BUG_CHECK(lo <= hi, "Rng::Range with inverted bounds");
    return lo + Below(hi - lo + 1);
  }

  // True with probability `percent`/100.
  bool Chance(uint32_t percent) { return Below(100) < percent; }

  // Picks an index according to integer weights; weights must be non-empty
  // and sum to > 0.
  size_t PickWeighted(const std::vector<uint32_t>& weights) {
    uint64_t total = 0;
    for (uint32_t w : weights) {
      total += w;
    }
    GAUNTLET_BUG_CHECK(total > 0, "Rng::PickWeighted with zero total weight");
    uint64_t roll = Below(total);
    for (size_t i = 0; i < weights.size(); ++i) {
      if (roll < weights[i]) {
        return i;
      }
      roll -= weights[i];
    }
    return weights.size() - 1;
  }

  template <typename T>
  const T& PickFrom(const std::vector<T>& items) {
    GAUNTLET_BUG_CHECK(!items.empty(), "Rng::PickFrom on empty vector");
    return items[Below(items.size())];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace gauntlet

#endif  // SRC_SUPPORT_RNG_H_
