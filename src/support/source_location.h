#ifndef SRC_SUPPORT_SOURCE_LOCATION_H_
#define SRC_SUPPORT_SOURCE_LOCATION_H_

#include <cstdint>
#include <string>

namespace gauntlet {

// A position in a source buffer. Lines and columns are 1-based; a value of 0
// means "unknown" (e.g. for synthesized nodes produced by compiler passes or
// the random program generator).
struct SourceLocation {
  uint32_t line = 0;
  uint32_t column = 0;

  constexpr bool IsKnown() const { return line != 0; }

  std::string ToString() const {
    if (!IsKnown()) {
      return "<generated>";
    }
    return std::to_string(line) + ":" + std::to_string(column);
  }

  friend bool operator==(const SourceLocation&, const SourceLocation&) = default;
};

}  // namespace gauntlet

#endif  // SRC_SUPPORT_SOURCE_LOCATION_H_
