#ifndef SRC_SUPPORT_ERROR_H_
#define SRC_SUPPORT_ERROR_H_

#include <stdexcept>
#include <string>

#include "src/support/source_location.h"

namespace gauntlet {

// Raised when the compiler itself is broken: an internal invariant was
// violated. This models p4c's BUG() assertion machinery; Gauntlet's crash-bug
// detection works by observing these escaping the pass pipeline (the paper's
// "abnormal termination ... assertion violations", section 2.1).
class CompilerBugError : public std::logic_error {
 public:
  explicit CompilerBugError(const std::string& message)
      : std::logic_error("COMPILER BUG: " + message) {}
};

// Raised when an input program is rejected: a user-facing, well-formed error
// message. Rejecting a valid program is still a (semantic/crash) bug, but
// raising this is the *orderly* failure mode, unlike CompilerBugError.
class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& message) : std::runtime_error(message) {}
  CompileError(const SourceLocation& loc, const std::string& message)
      : std::runtime_error(loc.ToString() + ": error: " + message) {}
};

// Raised for P4 constructs this reproduction does not model (paper section 8
// lists the same class of omissions for the original tool).
class UnsupportedError : public std::runtime_error {
 public:
  explicit UnsupportedError(const std::string& message)
      : std::runtime_error("unsupported: " + message) {}
};

// Internal-consistency check macro for the compiler: failure indicates a bug
// in the compiler (or a seeded one), never in the input program.
#define GAUNTLET_BUG_CHECK(cond, msg)       \
  do {                                      \
    if (!(cond)) {                          \
      throw ::gauntlet::CompilerBugError(msg); \
    }                                       \
  } while (0)

}  // namespace gauntlet

#endif  // SRC_SUPPORT_ERROR_H_
