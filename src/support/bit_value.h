#ifndef SRC_SUPPORT_BIT_VALUE_H_
#define SRC_SUPPORT_BIT_VALUE_H_

#include <cstdint>
#include <string>

namespace gauntlet {

// A concrete P4 `bit<N>` value, 1 <= N <= 64. All arithmetic is performed
// modulo 2^N, matching the P4-16 semantics for unsigned fixed-width integers.
// This is the value type shared by the constant folder, the concrete target
// interpreters, and SMT model extraction, so that all three agree exactly on
// arithmetic corner cases (wrap-around, shift-out, slice bounds).
class BitValue {
 public:
  static constexpr uint32_t kMaxWidth = 64;

  BitValue() : width_(1), bits_(0) {}
  BitValue(uint32_t width, uint64_t bits);

  uint32_t width() const { return width_; }
  uint64_t bits() const { return bits_; }

  // Mask with exactly `width` low bits set.
  static uint64_t MaskFor(uint32_t width);

  // Modular arithmetic.
  BitValue Add(const BitValue& other) const;
  BitValue Sub(const BitValue& other) const;
  BitValue Mul(const BitValue& other) const;
  // Bitwise.
  BitValue And(const BitValue& other) const;
  BitValue Or(const BitValue& other) const;
  BitValue Xor(const BitValue& other) const;
  BitValue Not() const;
  // Shifts: the shift amount is the *numeric value* of `other`; amounts >=
  // width produce 0, matching P4-16 (section 8.5).
  BitValue Shl(const BitValue& other) const;
  BitValue Shr(const BitValue& other) const;

  // Comparisons (unsigned).
  bool Eq(const BitValue& other) const { return bits_ == other.bits_; }
  bool Lt(const BitValue& other) const { return bits_ < other.bits_; }
  bool Le(const BitValue& other) const { return bits_ <= other.bits_; }

  // hi/lo are inclusive bit indices, hi >= lo, hi < width. Result width is
  // hi - lo + 1.
  BitValue Slice(uint32_t hi, uint32_t lo) const;
  // Replace bits [hi:lo] with `value` (whose width must be hi - lo + 1).
  BitValue SetSlice(uint32_t hi, uint32_t lo, const BitValue& value) const;
  // `this` becomes the most significant part.
  BitValue Concat(const BitValue& other) const;
  // Zero-extends or truncates to `new_width`.
  BitValue Cast(uint32_t new_width) const;

  std::string ToString() const;  // e.g. "8w255"

  friend bool operator==(const BitValue& a, const BitValue& b) {
    return a.width_ == b.width_ && a.bits_ == b.bits_;
  }

 private:
  uint32_t width_;
  uint64_t bits_;
};

}  // namespace gauntlet

#endif  // SRC_SUPPORT_BIT_VALUE_H_
