#include "src/support/bit_value.h"

#include "src/support/error.h"

namespace gauntlet {

BitValue::BitValue(uint32_t width, uint64_t bits) : width_(width), bits_(bits & MaskFor(width)) {
  GAUNTLET_BUG_CHECK(width >= 1 && width <= kMaxWidth, "BitValue width out of range");
}

uint64_t BitValue::MaskFor(uint32_t width) {
  if (width >= 64) {
    return ~uint64_t{0};
  }
  return (uint64_t{1} << width) - 1;
}

BitValue BitValue::Add(const BitValue& other) const {
  GAUNTLET_BUG_CHECK(width_ == other.width_, "width mismatch in Add");
  return BitValue(width_, bits_ + other.bits_);
}

BitValue BitValue::Sub(const BitValue& other) const {
  GAUNTLET_BUG_CHECK(width_ == other.width_, "width mismatch in Sub");
  return BitValue(width_, bits_ - other.bits_);
}

BitValue BitValue::Mul(const BitValue& other) const {
  GAUNTLET_BUG_CHECK(width_ == other.width_, "width mismatch in Mul");
  return BitValue(width_, bits_ * other.bits_);
}

BitValue BitValue::And(const BitValue& other) const {
  GAUNTLET_BUG_CHECK(width_ == other.width_, "width mismatch in And");
  return BitValue(width_, bits_ & other.bits_);
}

BitValue BitValue::Or(const BitValue& other) const {
  GAUNTLET_BUG_CHECK(width_ == other.width_, "width mismatch in Or");
  return BitValue(width_, bits_ | other.bits_);
}

BitValue BitValue::Xor(const BitValue& other) const {
  GAUNTLET_BUG_CHECK(width_ == other.width_, "width mismatch in Xor");
  return BitValue(width_, bits_ ^ other.bits_);
}

BitValue BitValue::Not() const { return BitValue(width_, ~bits_); }

BitValue BitValue::Shl(const BitValue& other) const {
  if (other.bits_ >= width_) {
    return BitValue(width_, 0);
  }
  return BitValue(width_, bits_ << other.bits_);
}

BitValue BitValue::Shr(const BitValue& other) const {
  if (other.bits_ >= width_) {
    return BitValue(width_, 0);
  }
  return BitValue(width_, bits_ >> other.bits_);
}

BitValue BitValue::Slice(uint32_t hi, uint32_t lo) const {
  GAUNTLET_BUG_CHECK(hi >= lo && hi < width_, "slice indices out of range");
  return BitValue(hi - lo + 1, bits_ >> lo);
}

BitValue BitValue::SetSlice(uint32_t hi, uint32_t lo, const BitValue& value) const {
  GAUNTLET_BUG_CHECK(hi >= lo && hi < width_, "slice indices out of range");
  GAUNTLET_BUG_CHECK(value.width_ == hi - lo + 1, "slice value width mismatch");
  const uint64_t field_mask = MaskFor(hi - lo + 1) << lo;
  return BitValue(width_, (bits_ & ~field_mask) | (value.bits_ << lo));
}

BitValue BitValue::Concat(const BitValue& other) const {
  GAUNTLET_BUG_CHECK(width_ + other.width_ <= kMaxWidth, "concat result too wide");
  return BitValue(width_ + other.width_, (bits_ << other.width_) | other.bits_);
}

BitValue BitValue::Cast(uint32_t new_width) const { return BitValue(new_width, bits_); }

std::string BitValue::ToString() const {
  return std::to_string(width_) + "w" + std::to_string(bits_);
}

}  // namespace gauntlet
