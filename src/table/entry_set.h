#ifndef SRC_TABLE_ENTRY_SET_H_
#define SRC_TABLE_ENTRY_SET_H_

#include <string>
#include <vector>

#include "src/smt/expr.h"
#include "src/smt/solver.h"
#include "src/table/table_model.h"

namespace gauntlet {

// ---------------------------------------------------------------------------
// The symbolic side of the table model: paper Figure 3 generalized from one
// symbolic entry to N.
//
// Each of the N entry slots carries its own symbolic key columns, action
// index and control-plane action data, plus a symbolic *priority* that
// decides the installation order. An entry is installed iff its action index
// selects a listed action (the Fig. 3 convention: index i + 1 selects listed
// action i; 0 / out-of-range means the slot is empty). The winning entry of
// a lookup is the matching installed entry with the lowest priority (ties
// broken by slot index) — exactly first-match semantics once the solved
// entries are installed in (priority, slot) order, which is what
// EntriesFromModel does when it inverts the encoding back into concrete
// control-plane state.
//
// This is what lets path enumeration (src/testgen) solve for hits on
// *different installed entries* before any packet exists: "slot 1 wins while
// slot 0 is installed with a lower priority but a different key" is an
// ordinary satisfiable path condition, not a post-solve decoy.
// ---------------------------------------------------------------------------

// The width of the Fig. 3 action-index variable (value i + 1 selects listed
// action i; 0 / out-of-range = empty slot) and of the per-slot installation
// priority. Shared with every consumer that writes constants against these
// variables (testgen preferences, hand-built test models).
inline constexpr uint32_t kActionIndexWidth = 16;
inline constexpr uint32_t kPriorityWidth = 4;

// The symbolic control-plane variables of one entry slot.
struct SymbolicTableEntry {
  std::vector<std::string> key_vars;  // "<t>_e<k>_key_<i>" (bit vars)
  std::string action_var;             // "<t>_e<k>_action" (bit<16> var)
  std::string priority_var;           // "<t>_e<k>_prio" (bit<8> var)
  // action_data_vars[i] are the symbolic argument names this slot supplies
  // to listed action i ("<t>_e<k>_<action>_<param>").
  std::vector<std::vector<std::string>> action_data_vars;

  SmtRef installed_condition;  // action index selects a listed action
  SmtRef match_condition;      // installed && every key column equals its var
  SmtRef win_condition;        // matches && beats every other matching slot
};

// Symbolic control-plane state of one applied table: what the block
// semantics expose to test generation and the model-consuming tests.
struct TableInfo {
  std::string table_name;
  std::vector<std::string> action_names;  // listed actions; index i selects i+1
  std::vector<SymbolicTableEntry> entries;
  // True iff some entry wins (== some entry matches); False for keyless
  // tables, which can only run their default action.
  SmtRef hit_condition;
};

// Builds the N-entry encoding for one table into an SmtContext and answers
// the questions the symbolic interpreter asks while executing the table's
// actions under it.
class SymbolicEntrySet {
 public:
  // `key_values` are the table's evaluated key expressions, in column order.
  // Keyless tables get zero slots (their lookup can never hit).
  SymbolicEntrySet(SmtContext& ctx, const TableModel& model, const std::string& prefix,
                   const std::vector<SmtRef>& key_values, size_t num_entries);

  const TableInfo& info() const { return info_; }
  TableInfo TakeInfo() { return std::move(info_); }
  size_t size() const { return info_.entries.size(); }

  // Some entry wins the lookup (the table "hits").
  SmtRef AnyHit() const { return info_.hit_condition; }

  // The winning entry selects listed action `action_index`.
  SmtRef ActionSelected(size_t action_index) const;

  // The value bound to parameter `param_index` of listed action
  // `action_index` when that action is selected: the winning slot's data
  // variable, multiplexed over the slots.
  SmtRef ActionDataValue(size_t action_index, size_t param_index) const;

  // For every adjacent slot pair, the condition that both match the lookup
  // key — the entry-shadowing scenario (several installed entries overlap on
  // one key and installation order decides). Exposed so path enumeration
  // treats "overlapping entries" as a decision worth exploring.
  std::vector<SmtRef> OverlapConditions() const;

 private:
  SmtContext& ctx_;
  TableInfo info_;
  // Per-slot resolved refs, parallel to info_.entries.
  std::vector<SmtRef> action_refs_;
  std::vector<SmtRef> priority_refs_;
  // data_refs_[slot][action][param]
  std::vector<std::vector<std::vector<SmtRef>>> data_refs_;
};

// Inverts the encoding: reads every installed slot out of a solved model and
// returns the concrete entries in installation order — sorted by
// (priority, slot index) so that first-match lookup over the returned list
// realizes the symbolic lowest-priority-wins semantics. Uninstalled slots
// are skipped; an empty result means the model left the table unpopulated.
std::vector<TableEntry> EntriesFromModel(const SmtModel& model, const TableInfo& info);

// What one solved witness model says about one table: the concrete lookup
// scenario the test realizes. Feeds the "table-config" and "path-shape"
// coverage domains and the fault-trigger exercise predicates; derived
// purely from the model (no solver calls), so it is identical for any
// --jobs value and cache setting.
struct TableScenario {
  bool keyless = false;
  int installed_slots = 0;
  bool hit = false;
  int winning_slot = -1;        // -1 on miss
  bool non_first_slot_win = false;  // winner preceded by another installed slot
  bool overlap = false;             // >= 2 installed slots match the lookup key
  bool divergent_overlap = false;   // overlapping slots select different actions
  bool multi_byte_key = false;      // winner matched on a byte-aligned key >= 16 bits
  bool multi_byte_action_data = false;  // winner supplies byte-aligned data >= 16 bits
};

TableScenario ClassifyTableScenario(const SmtContext& ctx, const SmtModel& model,
                                    const TableInfo& info);

}  // namespace gauntlet

#endif  // SRC_TABLE_ENTRY_SET_H_
