#include "src/table/table_model.h"

#include "src/support/error.h"
#include "src/target/stf.h"

namespace gauntlet {

uint64_t ReverseWholeBytes(uint64_t bits, uint32_t width) {
  if (width < 16 || width % 8 != 0) {
    return bits;
  }
  uint64_t reversed = 0;
  for (uint32_t byte = 0; byte < width / 8; ++byte) {
    reversed = (reversed << 8) | ((bits >> (8 * byte)) & 0xffu);
  }
  return reversed;
}

BitValue ApplyKeyTransform(KeyTransform transform, const BitValue& value) {
  if (transform == KeyTransform::kIdentity) {
    return value;
  }
  return BitValue(value.width(), ReverseWholeBytes(value.bits(), value.width()));
}

BitValue ApplyDataTransform(DataTransform transform, const BitValue& value) {
  if (transform == DataTransform::kIdentity) {
    return value;
  }
  return BitValue(value.width(), ReverseWholeBytes(value.bits(), value.width()));
}

const ActionDecl* TableModel::FindControlAction(const ControlDecl& control,
                                                const std::string& name) const {
  const Decl* local = control.FindLocal(name);
  if (local != nullptr && local->kind() == DeclKind::kAction) {
    return static_cast<const ActionDecl*>(local);
  }
  return nullptr;
}

TableModel::TableModel(const ControlDecl& control, const TableDecl& table) : table_(&table) {
  actions_.reserve(table.actions().size());
  for (const std::string& action_name : table.actions()) {
    const ActionDecl* action = FindControlAction(control, action_name);
    GAUNTLET_BUG_CHECK(action != nullptr,
                       "table '" + table.name() + "' lists unknown action '" + action_name + "'");
    actions_.push_back(action);
  }
  default_action_ = FindControlAction(control, table.default_action());
  GAUNTLET_BUG_CHECK(default_action_ != nullptr,
                     "table '" + table.name() + "' has unknown default action '" +
                         table.default_action() + "'");
}

size_t TableModel::ActionNumber(const std::string& action_name) const {
  for (size_t i = 0; i < table_->actions().size(); ++i) {
    if (table_->actions()[i] == action_name) {
      return i + 1;
    }
  }
  return 0;
}

void TableModel::ValidateEntry(const TableEntry& entry,
                               const std::vector<uint32_t>& key_widths) const {
  if (entry.key.size() != key_widths.size()) {
    throw CompileError("table '" + name() + "': installed entry has " +
                       std::to_string(entry.key.size()) + " key columns, expected " +
                       std::to_string(key_widths.size()));
  }
  for (size_t i = 0; i < key_widths.size(); ++i) {
    if (entry.key[i].width() != key_widths[i]) {
      throw CompileError("table '" + name() + "': entry key column " + std::to_string(i) +
                         " is " + entry.key[i].ToString() + " but the table key is bit<" +
                         std::to_string(key_widths[i]) + ">");
    }
  }
  const size_t action_number = ActionNumber(entry.action);
  if (action_number == 0) {
    throw CompileError("table '" + name() + "': entry action '" + entry.action +
                       "' is not among the table's listed actions");
  }
  const ActionDecl& entry_action = action(action_number - 1);
  if (entry.action_data.size() != entry_action.params().size()) {
    throw CompileError("table '" + name() + "': entry supplies " +
                       std::to_string(entry.action_data.size()) + " action-data values, '" +
                       entry.action + "' takes " +
                       std::to_string(entry_action.params().size()));
  }
  for (size_t i = 0; i < entry.action_data.size(); ++i) {
    const TypePtr& param_type = entry_action.params()[i].type;
    const uint32_t expected = param_type->IsBool() ? 1 : param_type->width();
    if (entry.action_data[i].width() != expected) {
      throw CompileError("table '" + name() + "': action-data value " + std::to_string(i) +
                         " is " + entry.action_data[i].ToString() + " but '" + entry.action +
                         "' parameter " + std::to_string(i) + " is " +
                         std::to_string(expected) + " bits wide");
    }
  }
}

TableModel::Outcome TableModel::Resolve(const std::vector<TableEntry>& entries,
                                        const std::vector<BitValue>& lookup_key,
                                        const TableSemantics& semantics) const {
  Outcome outcome;

  // A keyless table can never hit: it compiles to a direct call on the miss
  // path (so the key transform has nothing to touch).
  if (!keyless()) {
    std::vector<BitValue> transformed_key;
    std::vector<uint32_t> key_widths;
    transformed_key.reserve(lookup_key.size());
    key_widths.reserve(lookup_key.size());
    for (const BitValue& column : lookup_key) {
      transformed_key.push_back(ApplyKeyTransform(semantics.key_transform, column));
      key_widths.push_back(column.width());
    }

    // Every installed entry is validated, matching or not: a malformed row
    // must fail loudly even when another entry would win the lookup.
    const TableEntry* hit = nullptr;
    for (const TableEntry& entry : entries) {
      ValidateEntry(entry, key_widths);
      bool matches = true;
      for (size_t i = 0; i < transformed_key.size(); ++i) {
        matches &= entry.key[i].bits() == transformed_key[i].bits();
      }
      if (matches && (hit == nullptr || semantics.order == MatchOrder::kLastInstalled)) {
        hit = &entry;
      }
    }

    if (hit != nullptr) {
      const size_t action_number = ActionNumber(hit->action);
      outcome.kind = Outcome::Kind::kRunAction;
      outcome.action = &action(action_number - 1);
      outcome.action_data.reserve(hit->action_data.size());
      for (const BitValue& value : hit->action_data) {
        outcome.action_data.push_back(ApplyDataTransform(semantics.data_transform, value));
      }
      return outcome;
    }
  }

  // Miss path (a keyless table always misses). The miss rewrites apply here
  // with one exception: kDropPacket models a *map lookup* aborting, and
  // keyless tables compile to direct calls, not map lookups.
  switch (semantics.miss) {
    case MissBehavior::kRunDefaultAction:
      break;
    case MissBehavior::kDropPacket:
      if (!keyless()) {
        outcome.kind = Outcome::Kind::kDropPacket;
        return outcome;
      }
      break;
    case MissBehavior::kRunFirstActionZeroData:
      if (!actions_.empty()) {
        outcome.kind = Outcome::Kind::kRunAction;
        outcome.action = actions_.front();
        for (const Param& param : actions_.front()->params()) {
          outcome.action_data.emplace_back(param.type->IsBool() ? 1 : param.type->width(), 0);
        }
        return outcome;
      }
      break;
    case MissBehavior::kNoAction:
      outcome.kind = Outcome::Kind::kNoAction;
      return outcome;
  }

  outcome.kind = Outcome::Kind::kRunDefaultAction;
  outcome.action = default_action_;
  return outcome;
}

}  // namespace gauntlet
