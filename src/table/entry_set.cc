#include "src/table/entry_set.h"

#include <algorithm>

#include "src/smt/evaluator.h"
#include "src/support/error.h"
#include "src/target/stf.h"

namespace gauntlet {

SymbolicEntrySet::SymbolicEntrySet(SmtContext& ctx, const TableModel& model,
                                   const std::string& prefix,
                                   const std::vector<SmtRef>& key_values, size_t num_entries)
    : ctx_(ctx) {
  info_.table_name = model.name();
  for (size_t i = 0; i < model.action_count(); ++i) {
    info_.action_names.push_back(model.action_name(i));
  }
  info_.hit_condition = ctx.False();
  if (model.keyless()) {
    // A keyless table has no lookup: no slots, hit stays False, and the
    // default action is the only behavior.
    return;
  }
  GAUNTLET_BUG_CHECK(key_values.size() == model.key_count(),
                     "key value count does not match the table declaration");

  const std::string base = prefix + model.name();
  for (size_t slot = 0; slot < num_entries; ++slot) {
    SymbolicTableEntry entry;
    const std::string slot_base = base + "_e" + std::to_string(slot);

    SmtRef keys_equal = ctx.True();
    for (size_t i = 0; i < key_values.size(); ++i) {
      const std::string var_name = slot_base + "_key_" + std::to_string(i);
      const SmtRef key_var = ctx.Var(var_name, ctx.WidthOf(key_values[i]));
      entry.key_vars.push_back(var_name);
      keys_equal = ctx.BoolAnd(keys_equal, ctx.Eq(key_values[i], key_var));
    }

    entry.action_var = slot_base + "_action";
    const SmtRef action_var = ctx.Var(entry.action_var, kActionIndexWidth);
    entry.priority_var = slot_base + "_prio";
    const SmtRef priority_var = ctx.Var(entry.priority_var, kPriorityWidth);

    // Installed iff the action index selects a listed action (1-based; 0 and
    // out-of-range mean the slot is empty).
    entry.installed_condition = ctx.BoolAnd(
        ctx.BoolNot(ctx.Eq(action_var, ctx.Const(kActionIndexWidth, 0))),
        ctx.Ule(action_var, ctx.Const(kActionIndexWidth, model.action_count())));
    entry.match_condition = ctx.BoolAnd(entry.installed_condition, keys_equal);

    for (size_t i = 0; i < model.action_count(); ++i) {
      const ActionDecl& action = model.action(i);
      std::vector<std::string> data_vars;
      for (const Param& param : action.params()) {
        data_vars.push_back(slot_base + "_" + model.action_name(i) + "_" + param.name);
      }
      entry.action_data_vars.push_back(std::move(data_vars));
    }

    action_refs_.push_back(action_var);
    priority_refs_.push_back(priority_var);
    info_.entries.push_back(std::move(entry));
  }

  // Materialize the data variables (after the loop so allocation order is
  // slot-major, matching the names the testgen model reader expects).
  data_refs_.resize(info_.entries.size());
  for (size_t slot = 0; slot < info_.entries.size(); ++slot) {
    data_refs_[slot].resize(model.action_count());
    for (size_t i = 0; i < model.action_count(); ++i) {
      const ActionDecl& action = model.action(i);
      for (size_t p = 0; p < action.params().size(); ++p) {
        const std::string& var_name = info_.entries[slot].action_data_vars[i][p];
        const TypePtr& param_type = action.params()[p].type;
        data_refs_[slot][i].push_back(param_type->IsBool()
                                          ? ctx.BoolVar(var_name)
                                          : ctx.Var(var_name, param_type->width()));
      }
    }
  }

  // Winner: the matching slot with the lowest priority; ties break toward
  // the lower slot index. This is first-match over the (priority, slot)
  // installation order EntriesFromModel emits.
  for (size_t slot = 0; slot < info_.entries.size(); ++slot) {
    SmtRef wins = info_.entries[slot].match_condition;
    for (size_t other = 0; other < info_.entries.size(); ++other) {
      if (other == slot) {
        continue;
      }
      const SmtRef beats = slot < other
                               ? ctx.Ule(priority_refs_[slot], priority_refs_[other])
                               : ctx.Ult(priority_refs_[slot], priority_refs_[other]);
      wins = ctx.BoolAnd(
          wins, ctx.BoolOr(ctx.BoolNot(info_.entries[other].match_condition), beats));
    }
    info_.entries[slot].win_condition = wins;
    info_.hit_condition = ctx.BoolOr(info_.hit_condition, wins);
  }
}

SmtRef SymbolicEntrySet::ActionSelected(size_t action_index) const {
  SmtRef selected = ctx_.False();
  for (size_t slot = 0; slot < info_.entries.size(); ++slot) {
    selected = ctx_.BoolOr(
        selected,
        ctx_.BoolAnd(info_.entries[slot].win_condition,
                     ctx_.Eq(action_refs_[slot],
                             ctx_.Const(kActionIndexWidth, action_index + 1))));
  }
  return selected;
}

SmtRef SymbolicEntrySet::ActionDataValue(size_t action_index, size_t param_index) const {
  GAUNTLET_BUG_CHECK(!info_.entries.empty(), "action data requested from an empty entry set");
  SmtRef value = data_refs_[0][action_index][param_index];
  const bool is_bool = ctx_.IsBool(value);
  for (size_t slot = 1; slot < info_.entries.size(); ++slot) {
    const SmtRef slot_value = data_refs_[slot][action_index][param_index];
    value = is_bool ? ctx_.BoolIte(info_.entries[slot].win_condition, slot_value, value)
                    : ctx_.Ite(info_.entries[slot].win_condition, slot_value, value);
  }
  return value;
}

std::vector<SmtRef> SymbolicEntrySet::OverlapConditions() const {
  std::vector<SmtRef> overlaps;
  for (size_t slot = 1; slot < info_.entries.size(); ++slot) {
    overlaps.push_back(ctx_.BoolAnd(info_.entries[slot - 1].match_condition,
                                    info_.entries[slot].match_condition));
  }
  return overlaps;
}

std::vector<TableEntry> EntriesFromModel(const SmtModel& model, const TableInfo& info) {
  // A variable absent from the model reads as zero — solver models are
  // complete, but hand-built models (tests) only mention installed slots,
  // and an absent action index is exactly "slot empty".
  const auto bits_of = [&model](const std::string& name) {
    const auto it = model.bit_values.find(name);
    return it != model.bit_values.end() ? it->second.bits() : 0;
  };
  struct Installed {
    uint64_t priority;
    size_t slot;
    TableEntry entry;
  };
  std::vector<Installed> installed;
  for (size_t slot = 0; slot < info.entries.size(); ++slot) {
    const SymbolicTableEntry& symbolic = info.entries[slot];
    const uint64_t action_index = bits_of(symbolic.action_var);
    if (action_index < 1 || action_index > info.action_names.size()) {
      continue;  // empty slot
    }
    Installed record;
    record.priority = bits_of(symbolic.priority_var);
    record.slot = slot;
    for (const std::string& key_var : symbolic.key_vars) {
      record.entry.key.push_back(model.BitOf(key_var));
    }
    record.entry.action = info.action_names[action_index - 1];
    for (const std::string& data_var : symbolic.action_data_vars[action_index - 1]) {
      auto bit_it = model.bit_values.find(data_var);
      if (bit_it != model.bit_values.end()) {
        record.entry.action_data.push_back(bit_it->second);
      } else {
        record.entry.action_data.push_back(BitValue(1, model.BoolOf(data_var) ? 1 : 0));
      }
    }
    installed.push_back(std::move(record));
  }
  std::stable_sort(installed.begin(), installed.end(),
                   [](const Installed& a, const Installed& b) {
                     return a.priority != b.priority ? a.priority < b.priority
                                                     : a.slot < b.slot;
                   });
  std::vector<TableEntry> entries;
  entries.reserve(installed.size());
  for (Installed& record : installed) {
    entries.push_back(std::move(record.entry));
  }
  return entries;
}

TableScenario ClassifyTableScenario(const SmtContext& ctx, const SmtModel& model,
                                    const TableInfo& info) {
  TableScenario scenario;
  if (info.entries.empty()) {
    // Keyless tables get zero slots by construction (see the entry-set
    // constructor); their lookup can never hit.
    scenario.keyless = true;
    return scenario;
  }
  ModelEvaluator eval(ctx, model);
  const auto bits_of = [&model](const std::string& name) {
    const auto it = model.bit_values.find(name);
    return it != model.bit_values.end() ? it->second.bits() : 0;
  };
  const auto byte_aligned_wide = [&ctx](const std::string& name) {
    const SmtRef var = ctx.FindVar(name);
    if (!var.IsValid() || ctx.IsBool(var)) {
      return false;
    }
    const uint32_t width = ctx.WidthOf(var);
    return width >= 16 && width % 8 == 0;
  };

  int matching = 0;
  uint64_t first_matching_action = 0;
  for (size_t slot = 0; slot < info.entries.size(); ++slot) {
    const SymbolicTableEntry& entry = info.entries[slot];
    const uint64_t action_index = bits_of(entry.action_var);
    const bool installed = action_index >= 1 && action_index <= info.action_names.size();
    if (!installed) {
      continue;
    }
    ++scenario.installed_slots;
    if (eval.EvalBool(entry.match_condition)) {
      ++matching;
      if (matching == 1) {
        first_matching_action = action_index;
      } else if (action_index != first_matching_action) {
        scenario.divergent_overlap = true;
      }
    }
    if (!eval.EvalBool(entry.win_condition)) {
      continue;
    }
    scenario.hit = true;
    scenario.winning_slot = static_cast<int>(slot);
    scenario.non_first_slot_win = scenario.installed_slots > 1;
    for (const std::string& key_var : entry.key_vars) {
      scenario.multi_byte_key = scenario.multi_byte_key || byte_aligned_wide(key_var);
    }
    for (const std::string& data_var : entry.action_data_vars[action_index - 1]) {
      scenario.multi_byte_action_data =
          scenario.multi_byte_action_data || byte_aligned_wide(data_var);
    }
  }
  scenario.overlap = matching >= 2;
  return scenario;
}

}  // namespace gauntlet
