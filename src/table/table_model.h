#ifndef SRC_TABLE_TABLE_MODEL_H_
#define SRC_TABLE_TABLE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/support/bit_value.h"

namespace gauntlet {

struct TableEntry;

// ---------------------------------------------------------------------------
// The shared table-semantics layer (paper Figure 3, generalized).
//
// Match-action semantics — key matching, entry ordering, default-action
// fallback — used to be re-implemented independently by the symbolic
// interpreter (src/sym), the concrete reference executor (src/target) and
// test generation (src/testgen), with every back-end table fault a bespoke
// branch in one of them. This layer owns those semantics exactly once:
//
//   * TableModel       resolves a declared table against its control's
//                      actions and answers every structural question the
//                      engines need (listed actions, default action, key
//                      arity/widths, entry validation);
//   * TableSemantics   is the *declarative* description of how a target
//                      resolves lookups — the reference semantics is one
//                      value of it, and every seeded back-end table fault is
//                      a one-field rewrite of it (TargetQuirks are translated
//                      into a TableSemantics in src/target/concrete.cc);
//   * Resolve          turns (installed entries, lookup key, semantics) into
//                      the single action invocation a target performs.
//
// The symbolic side of the same model — N symbolic entries per table with a
// symbolic priority order — lives next door in entry_set.h and inverts to
// exactly the installed-entry lists Resolve consumes.
// ---------------------------------------------------------------------------

// How lookups resolve when several installed entries match one key. The
// reference semantics is first-installed-wins; kLastInstalled is the
// bmv2-table-priority-inversion rewrite.
enum class MatchOrder { kFirstInstalled, kLastInstalled };

// Transform applied to the lookup key before comparing against installed
// entries. kReverseBytes is the ebpf-map-key-byte-order rewrite: the lookup
// reads multi-byte keys host-order while the control plane installed them
// network-order (whole-byte columns of 16+ bits only).
enum class KeyTransform { kIdentity, kReverseBytes };

// Transform applied to a matched entry's control-plane action data before it
// is bound to the action's parameters. kReverseBytes is the
// tofino-action-data-endian-swap rewrite (byte-aligned multi-byte arguments
// only).
enum class DataTransform { kIdentity, kReverseBytes };

// What happens when no installed entry matches (keyed tables only; keyless
// tables always run their default action regardless of this field).
//   kRunDefaultAction       the reference semantics
//   kDropPacket             ebpf-map-miss-drops-packet (XDP_ABORTED)
//   kRunFirstActionZeroData bmv2-miss-runs-first-action
//   kNoAction               tofino-default-skipped
enum class MissBehavior { kRunDefaultAction, kDropPacket, kRunFirstActionZeroData, kNoAction };

// One target's table semantics as a declarative value. Default-constructed
// == the reference (source-language) semantics; each seeded table fault is a
// single-field deviation from it.
struct TableSemantics {
  MatchOrder order = MatchOrder::kFirstInstalled;
  KeyTransform key_transform = KeyTransform::kIdentity;
  DataTransform data_transform = DataTransform::kIdentity;
  MissBehavior miss = MissBehavior::kRunDefaultAction;

  static TableSemantics Reference() { return TableSemantics{}; }
  bool IsReference() const {
    return order == MatchOrder::kFirstInstalled && key_transform == KeyTransform::kIdentity &&
           data_transform == DataTransform::kIdentity &&
           miss == MissBehavior::kRunDefaultAction;
  }
};

// Byte-reverses a whole-byte value of 16+ bits; narrower or non-byte-aligned
// values pass through unchanged (a single byte has no order to confuse).
// The one spelling of "reverse the bytes" shared by the key and action-data
// rewrites on both the installing and the looking-up side.
uint64_t ReverseWholeBytes(uint64_t bits, uint32_t width);
BitValue ApplyKeyTransform(KeyTransform transform, const BitValue& value);
BitValue ApplyDataTransform(DataTransform transform, const BitValue& value);

// The authoritative model of one declared table: the declaration resolved
// against its enclosing control's action declarations. Engines ask the model
// structural questions instead of re-walking the AST, so the action-index
// convention (1-based, 0 = miss/uninstalled — paper Fig. 3) and the entry
// validation rules exist in exactly one place.
class TableModel {
 public:
  // Throws CompilerBugError when the table lists (or defaults to) an action
  // the control does not declare — the same internal invariant both
  // interpreters used to assert independently.
  TableModel(const ControlDecl& control, const TableDecl& table);

  const TableDecl& decl() const { return *table_; }
  const std::string& name() const { return table_->name(); }
  bool keyless() const { return table_->keys().empty(); }
  size_t key_count() const { return table_->keys().size(); }

  size_t action_count() const { return actions_.size(); }
  const std::string& action_name(size_t index) const { return table_->actions()[index]; }
  const ActionDecl& action(size_t index) const { return *actions_[index]; }
  const ActionDecl& default_action() const { return *default_action_; }

  // The Fig. 3 action-index convention: listed action i is selected by index
  // i + 1; 0 (or any out-of-range index) means miss / not installed.
  // Returns 0 for an unlisted name.
  size_t ActionNumber(const std::string& action_name) const;

  // Rejects a malformed installed entry (wrong key arity/width, unlisted
  // action, wrong action-data shape) with a loud CompileError — a silently
  // ignored entry would make a hand-edited reproducer stop reproducing
  // without any indication. `key_widths` are the evaluated key-column widths.
  void ValidateEntry(const TableEntry& entry, const std::vector<uint32_t>& key_widths) const;

  // The single table invocation a target performs for one lookup.
  struct Outcome {
    enum class Kind {
      kRunAction,         // a matched entry: `action` with `action_data`
      kRunDefaultAction,  // miss (or keyless): the declared default
      kDropPacket,        // the kDropPacket miss rewrite fired
      kNoAction,          // the kNoAction miss rewrite fired
    };
    Kind kind = Kind::kRunDefaultAction;
    const ActionDecl* action = nullptr;   // valid iff kind == kRunAction
    // Transformed control-plane data, zero-padded to the action's parameter
    // count (the zero-data miss rewrite installs all-zero arguments).
    std::vector<BitValue> action_data;
  };

  // Resolves one lookup under `semantics`: validates every installed entry,
  // applies the key transform, picks the winner per the match order, and
  // applies the data transform — or resolves the miss per the miss behavior.
  // `entries` is the installed control-plane state in installation order.
  Outcome Resolve(const std::vector<TableEntry>& entries, const std::vector<BitValue>& lookup_key,
                  const TableSemantics& semantics) const;

 private:
  const ActionDecl* FindControlAction(const ControlDecl& control, const std::string& name) const;

  const TableDecl* table_;
  std::vector<const ActionDecl*> actions_;  // resolved, in listed order
  const ActionDecl* default_action_;
};

}  // namespace gauntlet

#endif  // SRC_TABLE_TABLE_MODEL_H_
