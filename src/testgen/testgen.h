#ifndef SRC_TESTGEN_TESTGEN_H_
#define SRC_TESTGEN_TESTGEN_H_

#include <vector>

#include "src/ast/program.h"
#include "src/target/stf.h"

namespace gauntlet {

class ValidationCache;

struct TestGenOptions {
  // Upper bound on generated test cases per program (path explosion guard,
  // §6.2: "the number of paths can be exponential in the length of the
  // program").
  size_t max_tests = 32;
  // Depth cap on the decision-condition enumeration. The N-entry table
  // encoding contributes more conditions per table (per-slot wins, slot
  // overlaps, action selections) than the old single-entry hit condition,
  // so the cap is sized to keep two multi-entry tables fully enumerable.
  size_t max_decisions = 16;
  // Ask the solver for non-zero packet bytes where possible, so that
  // zero-initializing targets cannot mask miscompilations (§6.2 and the
  // Fig. 5c discussion).
  bool prefer_nonzero = true;
  // Wall-clock budget per solver query (path probes and witness solves);
  // 0 = unlimited. Paths whose queries exhaust the budget are skipped, like
  // the silently-dropped test cases of §8.
  uint64_t query_time_limit_ms = 250;
  // Symbolic entry slots per table (src/table/entry_set.h; paper Fig. 3
  // generalized). With >= 2, path enumeration can solve for hits on
  // different installed entries, populated-table misses, and overlapping
  // (shadowed) entries *before* any packet exists — the scenarios that
  // expose priority-inversion and map-key back-end faults. 1 recovers the
  // paper's single-entry encoding (the bench_table_model baseline).
  size_t symbolic_table_entries = 2;
};

// Symbolic-execution-based test-case generation (paper Figure 4 and §6):
// interprets the *source* program into SMT formulas, enumerates feasible
// paths through its decision conditions, and for each path solves for an
// input packet + table configuration, computing the expected output packet
// from the same formulas. The resulting PacketTests run against black-box
// targets (Tofino) whose intermediate representations are inaccessible.
//
// Undefined values are pinned to zero, matching BMv2/Tofino-simulator
// zero-initialization (the paper's choice 2 in §6.2: "ascribe specific
// values to undefined variables and check if these values conform with the
// implementation of the particular target").
class TestCaseGenerator {
 public:
  explicit TestCaseGenerator(TestGenOptions options = {}) : options_(options) {}

  // Requires a package with at least parser + ingress + deparser. May throw
  // UnsupportedError for constructs outside the supported fragment
  // (paper §8); callers treat that as "no tests for this program".
  //
  // With a `cache` (src/cache/), the path-probe solver reuses bit-blasted
  // fragments recorded by earlier solves — including the translation
  // validator's, since fingerprints key on variable names and the source
  // program's block semantics are shared between the two techniques.
  // Replay is bit-exact, so the generated tests are identical either way.
  std::vector<PacketTest> Generate(const Program& program,
                                   ValidationCache* cache = nullptr) const;

 private:
  TestGenOptions options_;
};

}  // namespace gauntlet

#endif  // SRC_TESTGEN_TESTGEN_H_
