#ifndef SRC_TESTGEN_TESTGEN_H_
#define SRC_TESTGEN_TESTGEN_H_

#include <vector>

#include "src/ast/program.h"
#include "src/target/stf.h"

namespace gauntlet {

class ValidationCache;

struct TestGenOptions {
  // Upper bound on generated test cases per program (path explosion guard,
  // §6.2: "the number of paths can be exponential in the length of the
  // program").
  size_t max_tests = 32;
  // Depth cap on the decision-condition enumeration. The N-entry table
  // encoding contributes more conditions per table (per-slot wins, slot
  // overlaps, action selections) than the old single-entry hit condition,
  // so the cap is sized to keep two multi-entry tables fully enumerable.
  size_t max_decisions = 16;
  // Ask the solver for non-zero packet bytes where possible, so that
  // zero-initializing targets cannot mask miscompilations (§6.2 and the
  // Fig. 5c discussion).
  bool prefer_nonzero = true;
  // Wall-clock budget per solver query (path probes and witness solves);
  // 0 = unlimited. Paths whose queries exhaust the budget are skipped, like
  // the silently-dropped test cases of §8.
  uint64_t query_time_limit_ms = 250;
  // Symbolic entry slots per table (src/table/entry_set.h; paper Fig. 3
  // generalized). With >= 2, path enumeration can solve for hits on
  // different installed entries, populated-table misses, and overlapping
  // (shadowed) entries *before* any packet exists — the scenarios that
  // expose priority-inversion and map-key back-end faults. 1 recovers the
  // paper's single-entry encoding (the bench_table_model baseline).
  size_t symbolic_table_entries = 2;
  // Assumption-trail reuse in the path-probe solver (--no-incremental turns
  // it off). The probe solver only answers feasibility questions — every
  // byte that reaches a test comes from the separate witness solver, whose
  // configuration is fixed — so the generated tests are byte-identical
  // either way; only the enumeration cost changes.
  bool incremental_solving = true;
};

// What one program's path enumeration covered: decision depth, enumerated
// path count, and which table/parser scenarios the surviving tests realize.
// Derived from the enumerated paths and witness models, which replay
// bit-exactly for any --jobs value and with the cache on or off, so every
// field is deterministic. The campaign merges this into the "path-shape" /
// "table-config" coverage domains and the fault-trigger exercise
// predicates.
struct PathCoverageSummary {
  size_t decisions = 0;
  size_t paths = 0;
  size_t tests = 0;
  bool parser_reject = false;       // some surviving test drops in the parser
  bool table_hit = false;           // some test hits an installed entry
  bool table_miss = false;          // some test misses a populated table
  bool multi_entry = false;         // some test installs >= 2 slots in one table
  bool non_first_slot_win = false;  // winner preceded by another installed slot
  bool overlap = false;             // >= 2 installed slots match one lookup key
  bool divergent_overlap = false;   // overlapping slots select different actions
  bool keyless_table = false;
  bool multi_byte_key_hit = false;      // hit matched on a byte-aligned key >= 16 bits
  bool multi_byte_action_data = false;  // hit supplies byte-aligned data >= 16 bits
};

// Symbolic-execution-based test-case generation (paper Figure 4 and §6):
// interprets the *source* program into SMT formulas, enumerates feasible
// paths through its decision conditions, and for each path solves for an
// input packet + table configuration, computing the expected output packet
// from the same formulas. The resulting PacketTests run against black-box
// targets (Tofino) whose intermediate representations are inaccessible.
//
// Undefined values are pinned to zero, matching BMv2/Tofino-simulator
// zero-initialization (the paper's choice 2 in §6.2: "ascribe specific
// values to undefined variables and check if these values conform with the
// implementation of the particular target").
class TestCaseGenerator {
 public:
  explicit TestCaseGenerator(TestGenOptions options = {}) : options_(options) {}

  // Requires a package with at least parser + ingress + deparser. May throw
  // UnsupportedError for constructs outside the supported fragment
  // (paper §8); callers treat that as "no tests for this program".
  //
  // With a `cache` (src/cache/), the path-probe solver reuses bit-blasted
  // fragments recorded by earlier solves — including the translation
  // validator's, since fingerprints key on variable names and the source
  // program's block semantics are shared between the two techniques.
  // Replay is bit-exact, so the generated tests are identical either way.
  //
  // With a non-null `coverage`, fills in the path/table scenario summary
  // and records the "path-shape" / "table-config" coverage domains into the
  // thread-local coverage sink (when one is installed).
  std::vector<PacketTest> Generate(const Program& program, ValidationCache* cache = nullptr,
                                   PathCoverageSummary* coverage = nullptr) const;

 private:
  TestGenOptions options_;
};

}  // namespace gauntlet

#endif  // SRC_TESTGEN_TESTGEN_H_
