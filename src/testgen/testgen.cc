#include "src/testgen/testgen.h"

#include <functional>
#include <set>

#include "src/cache/verdict_cache.h"
#include "src/obs/coverage.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/smt/evaluator.h"
#include "src/sym/interpreter.h"
#include "src/table/entry_set.h"

namespace gauntlet {

namespace {

// Bucket edges for the tests-per-program yield histogram (§6.2 evaluation
// dimension). Deterministic scope: path enumeration replays bit-exactly for
// any --jobs value and with the cache on or off.
const std::vector<uint64_t> kTestsPerProgramBounds = {0, 1, 2, 4, 8, 16, 32};

// Replays the parser under a model to assemble the concrete input packet:
// walks the state machine, pulling each extracted field's bits from the
// model's packet variables, and evaluating selects concretely. Supports the
// generator's parser fragment (extracts + selects over extracted fields).
class PacketAssembler {
 public:
  PacketAssembler(const SmtContext& ctx, const SmtModel& model, const ParserDecl& parser)
      : ctx_(ctx), model_(model), parser_(parser) {}

  BitString Assemble() {
    BitString packet;
    std::string state_name = "start";
    size_t offset = 0;
    int steps = 0;
    while (state_name != "accept" && state_name != "reject") {
      if (++steps > SymbolicInterpreter::kMaxParserDepth) {
        throw UnsupportedError("packet assembly exceeded the parser unrolling bound");
      }
      const ParserState* state = parser_.FindState(state_name);
      GAUNTLET_BUG_CHECK(state != nullptr, "unknown parser state during packet assembly");
      for (const StmtPtr& stmt : state->statements) {
        if (stmt->kind() == StmtKind::kEmpty) {
          continue;
        }
        if (stmt->kind() != StmtKind::kCall ||
            static_cast<const CallStmt&>(*stmt).call().call_kind() != CallKind::kExtract) {
          throw UnsupportedError(
              "test generation supports only extract statements in parser states");
        }
        const CallExpr& call = static_cast<const CallStmt&>(*stmt).call();
        ExtractHeader(*call.receiver(), packet, offset);
      }
      if (state->select_expr == nullptr) {
        state_name = state->cases[0].next_state;
        continue;
      }
      const BitValue selector = EvalFieldExpr(*state->select_expr);
      std::string next;
      for (const SelectCase& select_case : state->cases) {
        if (select_case.value == nullptr) {
          next = select_case.next_state;
          break;
        }
        const BitValue case_value =
            static_cast<const ConstantExpr&>(*select_case.value).value();
        if (selector.Eq(case_value)) {
          next = select_case.next_state;
          break;
        }
      }
      GAUNTLET_BUG_CHECK(!next.empty(), "select without default during packet assembly");
      state_name = next;
    }
    return packet;
  }

 private:
  void ExtractHeader(const Expr& header_lvalue, BitString& packet, size_t& offset) {
    GAUNTLET_BUG_CHECK(header_lvalue.type() != nullptr && header_lvalue.type()->IsHeader(),
                       "extract target is not a typed header");
    const std::string path = PathOf(header_lvalue);
    for (const Type::Field& field : header_lvalue.type()->fields()) {
      const uint32_t width = field.type->width();
      const std::string var_name =
          "p::pkt[" + std::to_string(offset) + "+:" + std::to_string(width) + "]";
      BitValue bits(width, 0);
      auto it = model_.bit_values.find(var_name);
      if (it != model_.bit_values.end()) {
        bits = BitValue(width, it->second.bits());
      }
      packet.AppendBits(bits);
      fields_[path + "." + field.name] = bits;
      offset += width;
    }
  }

  static std::string PathOf(const Expr& expr) {
    if (expr.kind() == ExprKind::kPath) {
      return static_cast<const PathExpr&>(expr).name();
    }
    GAUNTLET_BUG_CHECK(expr.kind() == ExprKind::kMember, "unsupported parser l-value");
    const auto& member = static_cast<const MemberExpr&>(expr);
    return PathOf(member.base()) + "." + member.member();
  }

  BitValue EvalFieldExpr(const Expr& expr) const {
    if (expr.kind() == ExprKind::kPath || expr.kind() == ExprKind::kMember) {
      auto it = fields_.find(PathOf(expr));
      if (it == fields_.end()) {
        throw UnsupportedError("select over a field that was never extracted");
      }
      return it->second;
    }
    if (expr.kind() == ExprKind::kConstant) {
      return static_cast<const ConstantExpr&>(expr).value();
    }
    throw UnsupportedError("test generation supports only field/constant select expressions");
  }

  const SmtContext& ctx_;
  const SmtModel& model_;
  const ParserDecl& parser_;
  std::map<std::string, BitValue> fields_;
};

// Builds the table configuration a model implies: every installed entry
// slot of the N-entry encoding, in the installation order its solved
// priorities dictate (src/table/entry_set.h). Miss-path models now install
// their non-matching slots too — a populated table the lookup misses is an
// ordinary solved scenario, not a post-solve decoy.
TableConfig TablesFromModel(const SmtModel& model, const std::vector<TableInfo>& tables) {
  TableConfig config;
  for (const TableInfo& table : tables) {
    std::vector<TableEntry> entries = EntriesFromModel(model, table);
    if (!entries.empty()) {
      config[table.table_name] = std::move(entries);
    }
  }
  return config;
}

}  // namespace

std::vector<PacketTest> TestCaseGenerator::Generate(const Program& program, ValidationCache* cache,
                                                    PathCoverageSummary* coverage) const {
  const PackageBlock* parser_block = program.FindBlock(BlockRole::kParser);
  const PackageBlock* deparser_block = program.FindBlock(BlockRole::kDeparser);
  if (parser_block == nullptr || deparser_block == nullptr) {
    throw UnsupportedError("test generation requires a parser and a deparser");
  }
  const ParserDecl* parser = program.FindParser(parser_block->decl_name);
  GAUNTLET_BUG_CHECK(parser != nullptr, "parser binding is not a parser");

  SmtContext ctx;
  SymbolicInterpreter interpreter(ctx, options_.symbolic_table_entries);
  const PipelineSemantics pipeline = interpreter.InterpretPipeline(program);

  // Hard constraints shared by every path: glue + zero metadata + zero
  // undefined values.
  std::vector<SmtRef> hard = pipeline.glue;
  const std::set<std::string> glued(pipeline.glued_inputs.begin(),
                                    pipeline.glued_inputs.end());
  auto pin_unglued = [&](const BlockSemantics& block) {
    for (const std::string& input : block.input_vars) {
      if (glued.count(input) > 0 || input.rfind("p::pkt[", 0) == 0) {
        continue;
      }
      const SmtRef var = ctx.FindVar(input);
      GAUNTLET_BUG_CHECK(var.IsValid(), "input variable vanished");
      if (ctx.IsBool(var)) {
        hard.push_back(ctx.BoolNot(var));
      } else {
        hard.push_back(ctx.Eq(var, ctx.Const(ctx.WidthOf(var), 0)));
      }
    }
  };
  pin_unglued(pipeline.ingress);
  if (pipeline.has_egress) {
    pin_unglued(pipeline.egress);
  }
  pin_unglued(pipeline.deparser);
  // Pin every undefined value to zero (targets zero-initialize).
  for (uint32_t var_id = 0; var_id < ctx.VarCount(); ++var_id) {
    const std::string& name = ctx.VarName(var_id);
    if (name.find("undef") != std::string::npos) {
      const SmtRef var = ctx.FindVar(name);
      if (ctx.VarIsBool(var_id)) {
        hard.push_back(ctx.BoolNot(var));
      } else {
        hard.push_back(ctx.Eq(var, ctx.Const(ctx.VarWidth(var_id), 0)));
      }
    }
  }

  // Decision conditions across all blocks, in pipeline order, with their
  // kinds collected in parallel for the path-shape coverage census.
  std::vector<SmtRef> decisions;
  std::vector<std::string> decision_kinds;
  for (const BlockSemantics* block :
       {&pipeline.parser, &pipeline.ingress, &pipeline.egress, &pipeline.deparser}) {
    for (size_t i = 0; i < block->branch_conditions.size(); ++i) {
      decisions.push_back(block->branch_conditions[i]);
      decision_kinds.push_back(i < block->branch_kinds.size() ? block->branch_kinds[i]
                                                              : "unknown");
      if (decisions.size() >= options_.max_decisions) {
        break;
      }
    }
    if (decisions.size() >= options_.max_decisions) {
      break;
    }
  }

  // One incremental solver carries the hard constraints for the whole
  // enumeration; every path probe below is an assumption solve that reuses
  // the encoding, all learned clauses, and (with incremental solving on)
  // the shared assumption-prefix trail of the previous probe.
  SmtSolver solver(ctx);
  if (cache != nullptr) {
    solver.set_blast_cache(&cache->blast());
  }
  solver.set_incremental(options_.incremental_solving);
  solver.set_conflict_limit(100000);
  solver.set_time_limit_ms(options_.query_time_limit_ms);
  for (const SmtRef& constraint : hard) {
    solver.Assert(constraint);
  }

  // DFS over sign assignments of the decision conditions, pruning
  // infeasible prefixes with solver calls, visiting the true branch before
  // the false branch at every level. The fixed visit order makes the path
  // list a function of per-prefix feasibility alone — never of which model
  // a probe happened to return — so it is identical with incremental
  // solving on or off. Models still halve the probes: the branch the
  // parent's model already decides is feasible for free, and only the
  // other branch needs the solver (one probe per expanded node either
  // way; which branch pays it is the only thing a model influences).
  std::vector<std::vector<SmtRef>> paths;
  std::vector<SmtRef> assumption_stack;
  std::function<void(size_t, const SmtModel&)> enumerate = [&](size_t index,
                                                               const SmtModel& model) {
    if (index == decisions.size()) {
      paths.push_back(assumption_stack);
      return;
    }
    ModelEvaluator evaluator(ctx, model);
    const bool model_value = evaluator.EvalBool(decisions[index]);
    for (const bool branch : {true, false}) {
      if (paths.size() >= options_.max_tests) {
        return;
      }
      assumption_stack.push_back(branch ? decisions[index] : ctx.BoolNot(decisions[index]));
      if (branch == model_value) {
        // The inherited model witnesses this branch: recurse for free.
        enumerate(index + 1, model);
      } else if (solver.CheckUnderAssumptions(assumption_stack) == CheckResult::kSat) {
        const SmtModel branch_model = solver.ExtractModel();
        enumerate(index + 1, branch_model);
      }
      assumption_stack.pop_back();
    }
  };
  {
    TraceSpan span("testgen-enumerate", "testgen");
    if (decisions.empty()) {
      paths.push_back({});
    } else if (solver.Check() == CheckResult::kSat) {
      const SmtModel root_model = solver.ExtractModel();
      enumerate(0, root_model);
    }
    span.Arg("decisions", decisions.size());
    span.Arg("paths", paths.size());
  }
  CountMetric("testgen/paths", MetricScope::kTiming, paths.size());

  // Path-shape coverage: decision-depth bucket and branch-kind census.
  // Everything here derives from the bit-exact enumeration above, so the
  // recorded points are deterministic.
  const bool want_coverage = coverage != nullptr || CurrentCoverage() != nullptr;
  const auto kDet = MetricScope::kDeterministic;
  if (want_coverage) {
    const auto decision_bucket = [](size_t n) -> const char* {
      if (n == 0) return "0";
      if (n <= 2) return "1-2";
      if (n <= 4) return "3-4";
      if (n <= 8) return "5-8";
      if (n <= 16) return "9-16";
      return "17+";
    };
    CoverPoint("path-shape", std::string("decisions/") + decision_bucket(decisions.size()), kDet);
    for (const std::string& kind : decision_kinds) {
      CoverPoint("path-shape", "branch/" + kind, kDet);
    }
    if (coverage != nullptr) {
      coverage->decisions = decisions.size();
      coverage->paths = paths.size();
    }
  }

  // Constants the program itself writes (collected from the output DAGs).
  // An input field that happens to equal such a constant can mask a
  // miscompilation — e.g. a target that wrongly skips a default action
  // writing 0xee is invisible on a packet that already carries 0xee. This
  // generalizes the paper's §6.2 observation (zero inputs mask bugs on
  // zero-initializing targets) from zero to every program constant.
  std::set<std::pair<uint32_t, uint64_t>> written_constants;
  {
    std::vector<SmtRef> worklist;
    std::set<uint32_t> visited;
    for (const BlockSemantics* block :
         {&pipeline.parser, &pipeline.ingress, &pipeline.egress, &pipeline.deparser}) {
      for (const auto& [name, ref] : block->outputs) {
        worklist.push_back(ref);
      }
    }
    while (!worklist.empty() && written_constants.size() < 16) {
      const SmtRef ref = worklist.back();
      worklist.pop_back();
      if (!visited.insert(ref.index).second) {
        continue;
      }
      const SmtNode& node = ctx.node(ref);
      if (node.op == SmtOp::kConst && node.bits != 0) {
        written_constants.insert({node.width, node.bits});
      }
      worklist.insert(worklist.end(), node.args.begin(), node.args.end());
    }
  }

  // Tables whose control-plane state the tests must populate; names are
  // unique program-wide, so ingress and egress tables can share one list.
  std::vector<TableInfo> all_tables = pipeline.ingress.tables;
  if (pipeline.has_egress) {
    all_tables.insert(all_tables.end(), pipeline.egress.tables.begin(),
                      pipeline.egress.tables.end());
  }

  // Solve each path for a concrete witness and build the test case. The
  // witness models come from a dedicated solver whose configuration is
  // fixed (never varied by --no-incremental): every solve it performs is
  // determined by the path list and per-subset satisfiability verdicts —
  // both pure functions of the program — so the packets, table entries and
  // expected outputs it yields are byte-identical whether or not the probe
  // solver above reused trails. (The probe solver's own models cannot be
  // used here: its search history differs between the two modes.)
  SmtSolver witness_solver(ctx);
  if (cache != nullptr) {
    witness_solver.set_blast_cache(&cache->blast());
  }
  witness_solver.set_conflict_limit(100000);
  witness_solver.set_time_limit_ms(options_.query_time_limit_ms);
  for (const SmtRef& constraint : hard) {
    witness_solver.Assert(constraint);
  }
  TraceSpan witness_span("testgen-witness", "testgen");
  std::vector<PacketTest> tests;
  std::set<std::string> seen;  // dedupe by (packet, tables) fingerprint
  for (size_t path_index = 0; path_index < paths.size(); ++path_index) {
    std::vector<SmtRef> preferences;
    // Preference budget: packet-shaping preferences claim the budget first,
    // control-plane (action data) steering next, key asymmetry last — the
    // greedy CheckWithPreferences pass costs one assumption solve per
    // preference, so each later class gets a slightly larger cap instead
    // of starving behind an unbounded earlier one.
    constexpr size_t kPacketCap = 96;
    constexpr size_t kTableCap = 144;
    constexpr size_t kKeyCap = 160;
    // First byte != last byte on a whole-byte multi-byte value: makes any
    // byte-reversed load/lookup (endian-swap action data, byte-order-
    // confused map keys) observable.
    const auto prefer_byte_asymmetric = [&](SmtRef var, size_t cap) {
      const uint32_t width = ctx.WidthOf(var);
      if (width >= 16 && width % 8 == 0 && preferences.size() < cap) {
        preferences.push_back(ctx.BoolNot(ctx.Eq(
            ctx.Extract(var, width - 1, width - 8), ctx.Extract(var, 7, 0))));
      }
    };
    // Steer a value away from the constants the program writes, so "the
    // buggy output happens to equal the correct output" fix points are
    // avoided whenever the path allows it.
    const auto prefer_avoid_written_constants = [&](SmtRef var, size_t cap) {
      const uint32_t width = ctx.WidthOf(var);
      for (const auto& [const_width, const_bits] : written_constants) {
        if (const_width == width && preferences.size() < cap) {
          preferences.push_back(
              ctx.BoolNot(ctx.Eq(var, ctx.Const(const_width, const_bits))));
        }
      }
    };
    if (options_.prefer_nonzero) {
      // §6.2: zero values mask erroneous behavior on zero-initializing
      // targets. Prefer the high bit set (exposes truncation/carry bugs in
      // wide arithmetic) and non-zero overall; the greedy pass drops
      // whichever preferences conflict with the path condition.
      SmtRef previous_slice;
      for (const std::string& input : pipeline.parser.input_vars) {
        if (input.rfind("p::pkt[", 0) == 0) {
          const SmtRef var = ctx.FindVar(input);
          const uint32_t width = ctx.WidthOf(var);
          // Every byte non-zero: spreads entropy across the whole field so
          // truncation/carry faults in any sub-word are observable.
          for (uint32_t lo = 0; lo < width; lo += 8) {
            const uint32_t hi = lo + 7 < width ? lo + 7 : width - 1;
            preferences.push_back(ctx.BoolNot(
                ctx.Eq(ctx.Extract(var, hi, lo), ctx.Const(hi - lo + 1, 0))));
          }
          // Fields wider than a PHV container should carry their high bit,
          // so arithmetic on them overflows the container observably
          // instead of cancelling out in the truncated word.
          if (width > 32 && preferences.size() < kPacketCap) {
            preferences.push_back(
                ctx.Eq(ctx.Extract(var, width - 1, width - 1), ctx.Const(1, 1)));
          }
          // Consecutive equal-width fields should differ: a back end that
          // permutes field order (reversed extraction) or byte order is
          // invisible on packets whose swapped fields happen to agree.
          if (previous_slice.IsValid() && ctx.WidthOf(previous_slice) == width &&
              preferences.size() < kPacketCap) {
            preferences.push_back(ctx.BoolNot(ctx.Eq(previous_slice, var)));
          }
          previous_slice = var;
          prefer_avoid_written_constants(var, kPacketCap);
        }
      }
      // Control-plane stress preferences, per table:
      //  * hit paths should run the action carrying the most control-plane
      //    data — a hit on a parameterless action cannot expose faults in
      //    how the target loads installed entries (shadowed entries,
      //    byte-swapped action data);
      //  * every entry slot should actually be installed, so solved paths
      //    carry populated multi-entry tables;
      //  * a later slot's win should be a genuine non-first *installed* hit
      //    (the earlier slot installed first, at a lower priority);
      //  * overlapping (shadowed) slots should behave differently — a back
      //    end that resolves the overlap in the wrong order is observable;
      //  * multi-byte action data should have first byte != last byte, so
      //    a byte-reversed load is observable.
      for (const TableInfo& table : all_tables) {
        if (table.entries.empty()) {
          continue;  // keyless: no control-plane state to shape
        }
        // The data-richest listed action, measured on slot 0 (widths are
        // identical across slots).
        size_t best = table.action_names.size();
        uint32_t best_bits = 0;
        for (size_t i = 0; i < table.entries[0].action_data_vars.size(); ++i) {
          uint32_t bits = 0;
          for (const std::string& data_var : table.entries[0].action_data_vars[i]) {
            const SmtRef var = ctx.FindVar(data_var);
            if (var.IsValid()) {
              bits += ctx.IsBool(var) ? 1 : ctx.WidthOf(var);
            }
          }
          if (bits > best_bits) {
            best_bits = bits;
            best = i;
          }
        }
        if (best < table.action_names.size() && table.hit_condition.IsValid() &&
            preferences.size() < kTableCap) {
          SmtRef best_selected = ctx.False();
          for (const SymbolicTableEntry& entry : table.entries) {
            const SmtRef entry_action = ctx.FindVar(entry.action_var);
            if (entry_action.IsValid()) {
              best_selected = ctx.BoolOr(
                  best_selected, ctx.BoolAnd(entry.win_condition,
                                             ctx.Eq(entry_action, ctx.Const(kActionIndexWidth, best + 1))));
            }
          }
          preferences.push_back(ctx.BoolOr(ctx.BoolNot(table.hit_condition), best_selected));
        }
        // Structural multi-entry shaping.
        for (const SymbolicTableEntry& entry : table.entries) {
          if (entry.installed_condition.IsValid() && preferences.size() < kTableCap) {
            preferences.push_back(entry.installed_condition);
          }
        }
        for (size_t slot = 1; slot < table.entries.size(); ++slot) {
          const SymbolicTableEntry& prev = table.entries[slot - 1];
          const SymbolicTableEntry& entry = table.entries[slot];
          const SmtRef prev_prio = ctx.FindVar(prev.priority_var);
          const SmtRef prio = ctx.FindVar(entry.priority_var);
          const SmtRef prev_action = ctx.FindVar(prev.action_var);
          const SmtRef entry_action = ctx.FindVar(entry.action_var);
          if (!prev_prio.IsValid() || !prio.IsValid()) {
            continue;
          }
          if (preferences.size() < kTableCap) {
            preferences.push_back(
                ctx.BoolOr(ctx.BoolNot(entry.win_condition),
                           ctx.BoolAnd(prev.installed_condition, ctx.Ult(prev_prio, prio))));
          }
          if (prev_action.IsValid() && entry_action.IsValid() &&
              preferences.size() < kTableCap) {
            preferences.push_back(ctx.BoolOr(
                ctx.BoolNot(ctx.BoolAnd(prev.match_condition, entry.match_condition)),
                ctx.BoolNot(ctx.Eq(prev_action, entry_action))));
          }
        }
        for (const SymbolicTableEntry& entry : table.entries) {
          for (const std::vector<std::string>& data_vars : entry.action_data_vars) {
            for (const std::string& data_var : data_vars) {
              const SmtRef var = ctx.FindVar(data_var);
              if (!var.IsValid() || ctx.IsBool(var)) {
                continue;
              }
              prefer_byte_asymmetric(var, kTableCap);
              // A hit whose action data coincides with what the miss path
              // would leave behind is a fix point: the buggy and correct
              // outputs agree and the fault stays invisible. Steer the data
              // away from the masking candidates — zero, the program's own
              // constants, and the same-width input fields it might
              // overwrite — whenever the path allows it.
              const uint32_t width = ctx.WidthOf(var);
              if (preferences.size() < kTableCap) {
                preferences.push_back(ctx.BoolNot(ctx.Eq(var, ctx.Const(width, 0))));
              }
              prefer_avoid_written_constants(var, kTableCap);
              for (const std::string& input : pipeline.parser.input_vars) {
                if (input.rfind("p::pkt[", 0) != 0 || preferences.size() >= kTableCap) {
                  continue;
                }
                const SmtRef input_var = ctx.FindVar(input);
                if (input_var.IsValid() && ctx.WidthOf(input_var) == width) {
                  preferences.push_back(ctx.BoolNot(ctx.Eq(var, input_var)));
                }
              }
            }
          }
        }
        // Shadow divergence: the same (action, param) data variable should
        // differ across slots, so whichever overlapping entry a back end
        // wrongly picks computes a different output.
        for (size_t slot = 1; slot < table.entries.size(); ++slot) {
          const SymbolicTableEntry& prev = table.entries[slot - 1];
          const SymbolicTableEntry& entry = table.entries[slot];
          for (size_t i = 0; i < entry.action_data_vars.size(); ++i) {
            for (size_t p = 0; p < entry.action_data_vars[i].size(); ++p) {
              const SmtRef a = ctx.FindVar(prev.action_data_vars[i][p]);
              const SmtRef b = ctx.FindVar(entry.action_data_vars[i][p]);
              if (a.IsValid() && b.IsValid() && !ctx.IsBool(a) &&
                  preferences.size() < kTableCap) {
                preferences.push_back(ctx.BoolNot(ctx.Eq(a, b)));
              }
            }
          }
        }
        // Multi-byte match keys should be byte-asymmetric too: a back end
        // that looks keys up in the wrong byte order (network-vs-host
        // confusion) behaves correctly on palindromic keys.
        for (const SymbolicTableEntry& entry : table.entries) {
          for (const std::string& key_var : entry.key_vars) {
            const SmtRef var = ctx.FindVar(key_var);
            if (var.IsValid() && !ctx.IsBool(var)) {
              prefer_byte_asymmetric(var, kKeyCap);
            }
          }
        }
      }
    }
    if (witness_solver.CheckWithPreferences(preferences, paths[path_index]) !=
        CheckResult::kSat) {
      continue;  // path became infeasible under the hard pins
    }
    const SmtModel model = witness_solver.ExtractModel();

    PacketTest test;
    test.name = "path" + std::to_string(path_index);
    test.input = PacketAssembler(ctx, model, *parser).Assemble();
    test.tables = TablesFromModel(model, all_tables);

    // Expected output from the formal semantics.
    ModelEvaluator evaluator(ctx, model);
    const SmtRef* reject = pipeline.parser.FindOutput("$reject");
    if (reject != nullptr && evaluator.EvalBool(*reject)) {
      test.expected.dropped = true;
    } else {
      // Walk emit sites in order: emitN.$valid gates the field leaves that
      // follow it in the outputs vector.
      bool current_valid = false;
      for (const auto& [name, ref] : pipeline.deparser.outputs) {
        if (name.rfind("emit", 0) != 0) {
          continue;
        }
        if (name.find(".$valid") != std::string::npos) {
          current_valid = evaluator.EvalBool(ref);
          continue;
        }
        if (current_valid) {
          test.expected.output.AppendBits(evaluator.EvalBits(ref));
        }
      }
    }

    // Dedupe on the full serialized test (packet + installed entries +
    // expectation): two paths that differ only in which table entry they
    // hit are distinct control-plane stimuli and must both survive.
    std::string fingerprint = EmitStf(test);
    fingerprint.erase(0, fingerprint.find('\n'));  // drop the name line
    if (!seen.insert(std::move(fingerprint)).second) {
      continue;
    }

    // Classify what this surviving test realizes (witness models replay
    // bit-exactly, so the classification is deterministic too).
    if (want_coverage) {
      if (test.expected.dropped) {
        CoverPoint("path-shape", "class/parser-reject", kDet);
      } else {
        CoverPoint("path-shape", "class/forwarded", kDet);
      }
      for (const TableInfo& table : all_tables) {
        const TableScenario scenario = ClassifyTableScenario(ctx, model, table);
        if (scenario.keyless) {
          CoverPoint("table-config", "keyless-table", kDet);
        } else {
          CoverPoint("table-config",
                     "installed-slots/" + std::to_string(scenario.installed_slots), kDet);
        }
        if (scenario.hit) CoverPoint("path-shape", "class/table-hit", kDet);
        if (!scenario.hit && scenario.installed_slots > 0) {
          CoverPoint("path-shape", "class/table-miss", kDet);
        }
        if (scenario.installed_slots >= 2) CoverPoint("path-shape", "class/multi-entry", kDet);
        if (scenario.non_first_slot_win) {
          CoverPoint("table-config", "non-first-slot-win", kDet);
        }
        if (scenario.overlap) CoverPoint("table-config", "overlapping-entries", kDet);
        if (scenario.divergent_overlap) {
          CoverPoint("table-config", "shadowed-divergent", kDet);
          CoverPoint("path-shape", "class/priority-inversion", kDet);
        }
        if (scenario.multi_byte_key) CoverPoint("table-config", "multi-byte-key-hit", kDet);
        if (scenario.multi_byte_action_data) {
          CoverPoint("table-config", "multi-byte-action-data", kDet);
        }
        if (coverage != nullptr) {
          coverage->keyless_table = coverage->keyless_table || scenario.keyless;
          coverage->table_hit = coverage->table_hit || scenario.hit;
          coverage->table_miss =
              coverage->table_miss || (!scenario.hit && scenario.installed_slots > 0);
          coverage->multi_entry = coverage->multi_entry || scenario.installed_slots >= 2;
          coverage->non_first_slot_win =
              coverage->non_first_slot_win || scenario.non_first_slot_win;
          coverage->overlap = coverage->overlap || scenario.overlap;
          coverage->divergent_overlap =
              coverage->divergent_overlap || scenario.divergent_overlap;
          coverage->multi_byte_key_hit =
              coverage->multi_byte_key_hit || scenario.multi_byte_key;
          coverage->multi_byte_action_data =
              coverage->multi_byte_action_data || scenario.multi_byte_action_data;
        }
      }
      if (coverage != nullptr) {
        coverage->parser_reject = coverage->parser_reject || test.expected.dropped;
      }
    }
    tests.push_back(std::move(test));
  }
  witness_span.Arg("tests", tests.size());
  CountMetric("testgen/tests", MetricScope::kTiming, tests.size());
  ObserveMetric("testgen/tests_per_program", MetricScope::kDeterministic, kTestsPerProgramBounds,
                tests.size());
  if (coverage != nullptr) {
    coverage->tests = tests.size();
  }
  return tests;
}

}  // namespace gauntlet
