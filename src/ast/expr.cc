#include "src/ast/expr.h"

namespace gauntlet {

bool IsBooleanResult(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kLogicalAnd:
    case BinaryOp::kLogicalOr:
      return true;
    default:
      return false;
  }
}

std::string UnaryOpToString(UnaryOp op) {
  switch (op) {
    case UnaryOp::kComplement:
      return "~";
    case UnaryOp::kLogicalNot:
      return "!";
    case UnaryOp::kNegate:
      return "-";
  }
  return "<invalid>";
}

std::string BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kBitAnd:
      return "&";
    case BinaryOp::kBitOr:
      return "|";
    case BinaryOp::kBitXor:
      return "^";
    case BinaryOp::kShl:
      return "<<";
    case BinaryOp::kShr:
      return ">>";
    case BinaryOp::kConcat:
      return "++";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kLogicalAnd:
      return "&&";
    case BinaryOp::kLogicalOr:
      return "||";
  }
  return "<invalid>";
}

ExprPtr MakeConstant(uint32_t width, uint64_t bits) {
  return std::make_unique<ConstantExpr>(BitValue(width, bits));
}

ExprPtr MakeBool(bool value) { return std::make_unique<BoolConstExpr>(value); }

ExprPtr MakePath(std::string name) { return std::make_unique<PathExpr>(std::move(name)); }

ExprPtr MakeMember(ExprPtr base, std::string member) {
  return std::make_unique<MemberExpr>(std::move(base), std::move(member));
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right) {
  return std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  return std::make_unique<UnaryExpr>(op, std::move(operand));
}

}  // namespace gauntlet
