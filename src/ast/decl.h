#ifndef SRC_AST_DECL_H_
#define SRC_AST_DECL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ast/stmt.h"

namespace gauntlet {

// A formal parameter of an action, function, control, or parser.
struct Param {
  Direction direction = Direction::kNone;
  TypePtr type;
  std::string name;
};

enum class DeclKind {
  kAction,
  kFunction,
  kTable,
  kControl,
  kParser,
};

class Decl {
 public:
  virtual ~Decl() = default;

  DeclKind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  virtual std::unique_ptr<Decl> CloneDecl() const = 0;

 protected:
  Decl(DeclKind kind, std::string name) : kind_(kind), name_(std::move(name)) {}

 private:
  DeclKind kind_;
  std::string name_;
};

using DeclPtr = std::unique_ptr<Decl>;

// An action: callable from tables (directionless params become control-plane
// action data) or directly from apply blocks.
class ActionDecl : public Decl {
 public:
  ActionDecl(std::string name, std::vector<Param> params, std::unique_ptr<BlockStmt> body)
      : Decl(DeclKind::kAction, std::move(name)),
        params_(std::move(params)),
        body_(std::move(body)) {}

  const std::vector<Param>& params() const { return params_; }
  std::vector<Param>& mutable_params() { return params_; }
  const BlockStmt& body() const { return *body_; }
  BlockStmt* mutable_body() { return body_.get(); }
  std::unique_ptr<BlockStmt>& body_slot() { return body_; }

  DeclPtr CloneDecl() const override {
    auto body_clone = StmtPtr(body_->Clone());
    return std::make_unique<ActionDecl>(
        name(), params_,
        std::unique_ptr<BlockStmt>(static_cast<BlockStmt*>(body_clone.release())));
  }

 private:
  std::vector<Param> params_;
  std::unique_ptr<BlockStmt> body_;
};

// A top-level function with an optional return value. Directions are
// mandatory on parameters (except `in`, which is the default in P4-16 for
// value-like parameters; the parser normalizes missing directions to kIn).
class FunctionDecl : public Decl {
 public:
  FunctionDecl(std::string name, TypePtr return_type, std::vector<Param> params,
               std::unique_ptr<BlockStmt> body)
      : Decl(DeclKind::kFunction, std::move(name)),
        return_type_(std::move(return_type)),
        params_(std::move(params)),
        body_(std::move(body)) {}

  const TypePtr& return_type() const { return return_type_; }
  const std::vector<Param>& params() const { return params_; }
  const BlockStmt& body() const { return *body_; }
  BlockStmt* mutable_body() { return body_.get(); }
  std::unique_ptr<BlockStmt>& body_slot() { return body_; }

  DeclPtr CloneDecl() const override {
    auto body_clone = StmtPtr(body_->Clone());
    return std::make_unique<FunctionDecl>(
        name(), return_type_, params_,
        std::unique_ptr<BlockStmt>(static_cast<BlockStmt*>(body_clone.release())));
  }

 private:
  TypePtr return_type_;
  std::vector<Param> params_;
  std::unique_ptr<BlockStmt> body_;
};

// One key column of a match-action table. Only `exact` matching is modelled
// (the paper's tool also skips lpm/ternary, section 8).
struct TableKey {
  ExprPtr expr;
  std::string match_kind;  // always "exact"
};

// A match-action table. Entries are control-plane state and therefore not
// part of the program; the symbolic interpreter models them with one
// symbolic key + one symbolic action index per table (paper Figure 3).
class TableDecl : public Decl {
 public:
  TableDecl(std::string name, std::vector<TableKey> keys, std::vector<std::string> actions,
            std::string default_action, std::vector<ExprPtr> default_args)
      : Decl(DeclKind::kTable, std::move(name)),
        keys_(std::move(keys)),
        actions_(std::move(actions)),
        default_action_(std::move(default_action)),
        default_args_(std::move(default_args)) {}

  const std::vector<TableKey>& keys() const { return keys_; }
  std::vector<TableKey>& mutable_keys() { return keys_; }
  const std::vector<std::string>& actions() const { return actions_; }
  const std::string& default_action() const { return default_action_; }
  const std::vector<ExprPtr>& default_args() const { return default_args_; }
  std::vector<ExprPtr>& mutable_default_args() { return default_args_; }

  DeclPtr CloneDecl() const override {
    std::vector<TableKey> keys_clone;
    keys_clone.reserve(keys_.size());
    for (const TableKey& key : keys_) {
      keys_clone.push_back(TableKey{key.expr->Clone(), key.match_kind});
    }
    std::vector<ExprPtr> args_clone;
    args_clone.reserve(default_args_.size());
    for (const ExprPtr& arg : default_args_) {
      args_clone.push_back(arg->Clone());
    }
    return std::make_unique<TableDecl>(name(), std::move(keys_clone), actions_, default_action_,
                                       std::move(args_clone));
  }

 private:
  std::vector<TableKey> keys_;
  std::vector<std::string> actions_;
  std::string default_action_;
  std::vector<ExprPtr> default_args_;
};

// A control block: local actions/tables plus an apply body.
class ControlDecl : public Decl {
 public:
  ControlDecl(std::string name, std::vector<Param> params, std::vector<DeclPtr> locals,
              std::unique_ptr<BlockStmt> apply)
      : Decl(DeclKind::kControl, std::move(name)),
        params_(std::move(params)),
        locals_(std::move(locals)),
        apply_(std::move(apply)) {}

  const std::vector<Param>& params() const { return params_; }
  const std::vector<DeclPtr>& locals() const { return locals_; }
  std::vector<DeclPtr>& mutable_locals() { return locals_; }
  const BlockStmt& apply() const { return *apply_; }
  BlockStmt* mutable_apply() { return apply_.get(); }
  std::unique_ptr<BlockStmt>& apply_slot() { return apply_; }

  const Decl* FindLocal(const std::string& local_name) const {
    for (const DeclPtr& local : locals_) {
      if (local->name() == local_name) {
        return local.get();
      }
    }
    return nullptr;
  }

  DeclPtr CloneDecl() const override {
    std::vector<DeclPtr> locals_clone;
    locals_clone.reserve(locals_.size());
    for (const DeclPtr& local : locals_) {
      locals_clone.push_back(local->CloneDecl());
    }
    auto apply_clone = StmtPtr(apply_->Clone());
    return std::make_unique<ControlDecl>(
        name(), params_, std::move(locals_clone),
        std::unique_ptr<BlockStmt>(static_cast<BlockStmt*>(apply_clone.release())));
  }

 private:
  std::vector<Param> params_;
  std::vector<DeclPtr> locals_;
  std::unique_ptr<BlockStmt> apply_;
};

// One case of a parser `select` transition.
struct SelectCase {
  // Null expr means the `default` case.
  ExprPtr value;           // constant expression
  std::string next_state;  // state name, or "accept"/"reject"
};

// A parser state: straight-line statements followed by a transition.
struct ParserState {
  std::string name;
  std::vector<StmtPtr> statements;
  // If select_expr is null the transition is unconditional to cases[0].
  ExprPtr select_expr;
  std::vector<SelectCase> cases;
};

// A parser block: a finite state machine starting at state "start".
// Statements inside states may call extract(hdr) (CallKind::kExtract).
class ParserDecl : public Decl {
 public:
  ParserDecl(std::string name, std::vector<Param> params, std::vector<ParserState> states)
      : Decl(DeclKind::kParser, std::move(name)),
        params_(std::move(params)),
        states_(std::move(states)) {}

  const std::vector<Param>& params() const { return params_; }
  const std::vector<ParserState>& states() const { return states_; }
  std::vector<ParserState>& mutable_states() { return states_; }

  const ParserState* FindState(const std::string& state_name) const {
    for (const ParserState& state : states_) {
      if (state.name == state_name) {
        return &state;
      }
    }
    return nullptr;
  }

  DeclPtr CloneDecl() const override {
    std::vector<ParserState> states_clone;
    states_clone.reserve(states_.size());
    for (const ParserState& state : states_) {
      ParserState state_clone;
      state_clone.name = state.name;
      for (const StmtPtr& stmt : state.statements) {
        state_clone.statements.push_back(stmt->Clone());
      }
      state_clone.select_expr = state.select_expr ? state.select_expr->Clone() : nullptr;
      for (const SelectCase& select_case : state.cases) {
        state_clone.cases.push_back(SelectCase{
            select_case.value ? select_case.value->Clone() : nullptr, select_case.next_state});
      }
      states_clone.push_back(std::move(state_clone));
    }
    return std::make_unique<ParserDecl>(name(), params_, std::move(states_clone));
  }

 private:
  std::vector<Param> params_;
  std::vector<ParserState> states_;
};

}  // namespace gauntlet

#endif  // SRC_AST_DECL_H_
