#ifndef SRC_AST_PROGRAM_H_
#define SRC_AST_PROGRAM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/ast/decl.h"

namespace gauntlet {

// The role a declaration plays in the target package (paper Figure 1). This
// models the v1model-style architecture: a parser feeds programmable match-
// action controls, and a deparser serializes headers back to bytes.
enum class BlockRole {
  kParser,
  kIngress,
  kEgress,
  kDeparser,
};

std::string BlockRoleToString(BlockRole role);

struct PackageBlock {
  BlockRole role;
  std::string decl_name;  // name of the ParserDecl/ControlDecl filling the slot
};

// A whole P4 program: named types, top-level functions, parsers, controls,
// and the package instantiation wiring declarations to target block slots.
class Program {
 public:
  Program() = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  std::unique_ptr<Program> Clone() const;

  // --- named types ---
  void AddType(TypePtr type);
  TypePtr FindType(const std::string& name) const;
  const std::vector<TypePtr>& type_decls() const { return type_decls_; }

  // --- declarations ---
  void AddDecl(DeclPtr decl) { decls_.push_back(std::move(decl)); }
  const std::vector<DeclPtr>& decls() const { return decls_; }
  std::vector<DeclPtr>& mutable_decls() { return decls_; }
  Decl* FindDecl(const std::string& name) const;
  ControlDecl* FindControl(const std::string& name) const;
  ParserDecl* FindParser(const std::string& name) const;
  FunctionDecl* FindFunction(const std::string& name) const;

  // --- package ---
  void BindBlock(BlockRole role, std::string decl_name) {
    package_.push_back(PackageBlock{role, std::move(decl_name)});
  }
  const std::vector<PackageBlock>& package() const { return package_; }
  const PackageBlock* FindBlock(BlockRole role) const;

 private:
  std::vector<TypePtr> type_decls_;
  std::map<std::string, TypePtr> types_by_name_;
  std::vector<DeclPtr> decls_;
  std::vector<PackageBlock> package_;
};

using ProgramPtr = std::unique_ptr<Program>;

}  // namespace gauntlet

#endif  // SRC_AST_PROGRAM_H_
