#include "src/ast/type.h"

namespace gauntlet {

TypePtr Type::Void() {
  static const TypePtr instance(new Type(Kind::kVoid, 0, "", {}));
  return instance;
}

TypePtr Type::Bool() {
  static const TypePtr instance(new Type(Kind::kBool, 0, "", {}));
  return instance;
}

TypePtr Type::Bit(uint32_t width) {
  GAUNTLET_BUG_CHECK(width >= 1 && width <= 64, "bit<N> width out of supported range");
  return TypePtr(new Type(Kind::kBit, width, "", {}));
}

TypePtr Type::MakeHeader(std::string name, std::vector<Field> fields) {
  return TypePtr(new Type(Kind::kHeader, 0, std::move(name), std::move(fields)));
}

TypePtr Type::MakeStruct(std::string name, std::vector<Field> fields) {
  return TypePtr(new Type(Kind::kStruct, 0, std::move(name), std::move(fields)));
}

const Type::Field* Type::FindField(const std::string& field_name) const {
  for (const Field& field : fields_) {
    if (field.name == field_name) {
      return &field;
    }
  }
  return nullptr;
}

bool Type::Equals(const Type& other) const {
  if (kind_ != other.kind_) {
    return false;
  }
  switch (kind_) {
    case Kind::kVoid:
    case Kind::kBool:
      return true;
    case Kind::kBit:
      return width_ == other.width_;
    case Kind::kHeader:
    case Kind::kStruct: {
      if (name_ != other.name_ || fields_.size() != other.fields_.size()) {
        return false;
      }
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].name != other.fields_[i].name ||
            !fields_[i].type->Equals(*other.fields_[i].type)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

std::string Type::ToString() const {
  switch (kind_) {
    case Kind::kVoid:
      return "void";
    case Kind::kBool:
      return "bool";
    case Kind::kBit:
      return "bit<" + std::to_string(width_) + ">";
    case Kind::kHeader:
    case Kind::kStruct:
      return name_;
  }
  return "<invalid>";
}

std::string DirectionToString(Direction direction) {
  switch (direction) {
    case Direction::kNone:
      return "";
    case Direction::kIn:
      return "in";
    case Direction::kInOut:
      return "inout";
    case Direction::kOut:
      return "out";
  }
  return "<invalid>";
}

}  // namespace gauntlet
