#ifndef SRC_AST_EXPR_H_
#define SRC_AST_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ast/type.h"
#include "src/support/bit_value.h"
#include "src/support/source_location.h"

namespace gauntlet {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kConstant,   // bit<N> literal
  kBoolConst,  // true / false
  kPath,       // identifier reference
  kMember,     // expr.field
  kSlice,      // expr[hi:lo]
  kUnary,
  kBinary,
  kMux,   // cond ? then : else
  kCast,  // (bit<N>) expr
  kCall,  // calls usable in expression position: isValid(), function calls
};

enum class UnaryOp {
  kComplement,  // ~x
  kLogicalNot,  // !x
  kNegate,      // -x (two's complement)
};

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kBitAnd,
  kBitOr,
  kBitXor,
  kShl,
  kShr,
  kConcat,  // ++
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLogicalAnd,
  kLogicalOr,
};

// True for ==, !=, <, <=, >, >=, &&, || (result type bool).
bool IsBooleanResult(BinaryOp op);
std::string UnaryOpToString(UnaryOp op);
std::string BinaryOpToString(BinaryOp op);

// Base class for all P4 expressions. `type` is null until the type checker
// runs; compiler passes require typed trees and re-typecheck after rewrites.
class Expr {
 public:
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }
  const TypePtr& type() const { return type_; }
  void set_type(TypePtr type) { type_ = std::move(type); }
  const SourceLocation& loc() const { return loc_; }
  void set_loc(SourceLocation loc) { loc_ = loc; }

  virtual ExprPtr Clone() const = 0;

 protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  void CopyMetaFrom(const Expr& other) {
    type_ = other.type_;
    loc_ = other.loc_;
  }

 private:
  ExprKind kind_;
  TypePtr type_;
  SourceLocation loc_;
};

class ConstantExpr : public Expr {
 public:
  explicit ConstantExpr(BitValue value) : Expr(ExprKind::kConstant), value_(value) {
    set_type(Type::Bit(value.width()));
  }

  const BitValue& value() const { return value_; }

  ExprPtr Clone() const override {
    auto clone = std::make_unique<ConstantExpr>(value_);
    clone->CopyMetaFrom(*this);
    return clone;
  }

 private:
  BitValue value_;
};

class BoolConstExpr : public Expr {
 public:
  explicit BoolConstExpr(bool value) : Expr(ExprKind::kBoolConst), value_(value) {
    set_type(Type::Bool());
  }

  bool value() const { return value_; }

  ExprPtr Clone() const override {
    auto clone = std::make_unique<BoolConstExpr>(value_);
    clone->CopyMetaFrom(*this);
    return clone;
  }

 private:
  bool value_;
};

class PathExpr : public Expr {
 public:
  explicit PathExpr(std::string name) : Expr(ExprKind::kPath), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  ExprPtr Clone() const override {
    auto clone = std::make_unique<PathExpr>(name_);
    clone->CopyMetaFrom(*this);
    return clone;
  }

 private:
  std::string name_;
};

class MemberExpr : public Expr {
 public:
  MemberExpr(ExprPtr base, std::string member)
      : Expr(ExprKind::kMember), base_(std::move(base)), member_(std::move(member)) {}

  const Expr& base() const { return *base_; }
  Expr* mutable_base() { return base_.get(); }
  ExprPtr& base_slot() { return base_; }
  const std::string& member() const { return member_; }

  ExprPtr Clone() const override {
    auto clone = std::make_unique<MemberExpr>(base_->Clone(), member_);
    clone->CopyMetaFrom(*this);
    return clone;
  }

 private:
  ExprPtr base_;
  std::string member_;
};

class SliceExpr : public Expr {
 public:
  SliceExpr(ExprPtr base, uint32_t hi, uint32_t lo)
      : Expr(ExprKind::kSlice), base_(std::move(base)), hi_(hi), lo_(lo) {}

  const Expr& base() const { return *base_; }
  Expr* mutable_base() { return base_.get(); }
  ExprPtr& base_slot() { return base_; }
  uint32_t hi() const { return hi_; }
  uint32_t lo() const { return lo_; }

  ExprPtr Clone() const override {
    auto clone = std::make_unique<SliceExpr>(base_->Clone(), hi_, lo_);
    clone->CopyMetaFrom(*this);
    return clone;
  }

 private:
  ExprPtr base_;
  uint32_t hi_;
  uint32_t lo_;
};

class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(ExprKind::kUnary), op_(op), operand_(std::move(operand)) {}

  UnaryOp op() const { return op_; }
  const Expr& operand() const { return *operand_; }
  Expr* mutable_operand() { return operand_.get(); }
  ExprPtr& operand_slot() { return operand_; }

  ExprPtr Clone() const override {
    auto clone = std::make_unique<UnaryExpr>(op_, operand_->Clone());
    clone->CopyMetaFrom(*this);
    return clone;
  }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kBinary), op_(op), left_(std::move(left)), right_(std::move(right)) {}

  BinaryOp op() const { return op_; }
  const Expr& left() const { return *left_; }
  const Expr& right() const { return *right_; }
  Expr* mutable_left() { return left_.get(); }
  Expr* mutable_right() { return right_.get(); }
  ExprPtr& left_slot() { return left_; }
  ExprPtr& right_slot() { return right_; }

  ExprPtr Clone() const override {
    auto clone = std::make_unique<BinaryExpr>(op_, left_->Clone(), right_->Clone());
    clone->CopyMetaFrom(*this);
    return clone;
  }

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class MuxExpr : public Expr {
 public:
  MuxExpr(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr)
      : Expr(ExprKind::kMux),
        cond_(std::move(cond)),
        then_(std::move(then_expr)),
        else_(std::move(else_expr)) {}

  const Expr& cond() const { return *cond_; }
  const Expr& then_expr() const { return *then_; }
  const Expr& else_expr() const { return *else_; }
  ExprPtr& cond_slot() { return cond_; }
  ExprPtr& then_slot() { return then_; }
  ExprPtr& else_slot() { return else_; }

  ExprPtr Clone() const override {
    auto clone = std::make_unique<MuxExpr>(cond_->Clone(), then_->Clone(), else_->Clone());
    clone->CopyMetaFrom(*this);
    return clone;
  }

 private:
  ExprPtr cond_;
  ExprPtr then_;
  ExprPtr else_;
};

class CastExpr : public Expr {
 public:
  CastExpr(TypePtr target, ExprPtr operand)
      : Expr(ExprKind::kCast), target_(std::move(target)), operand_(std::move(operand)) {}

  const TypePtr& target() const { return target_; }
  const Expr& operand() const { return *operand_; }
  ExprPtr& operand_slot() { return operand_; }

  ExprPtr Clone() const override {
    auto clone = std::make_unique<CastExpr>(target_, operand_->Clone());
    clone->CopyMetaFrom(*this);
    return clone;
  }

 private:
  TypePtr target_;
  ExprPtr operand_;
};

// What a call refers to. Calls appear both in expression position (isValid,
// functions) and statement position (actions, table apply, validity setters).
enum class CallKind {
  kFunction,    // top-level function, possibly with return value
  kAction,      // direct action invocation
  kTableApply,  // t.apply()
  kSetValid,    // hdr.setValid()
  kSetInvalid,  // hdr.setInvalid()
  kIsValid,     // hdr.isValid() -> bool
  kExtract,     // packet.extract(hdr) — parser states only
  kEmit,        // packet.emit(hdr) — deparser controls only
};

class CallExpr : public Expr {
 public:
  // `receiver` is the header l-value for validity methods, null otherwise.
  CallExpr(CallKind call_kind, std::string callee, ExprPtr receiver, std::vector<ExprPtr> args)
      : Expr(ExprKind::kCall),
        call_kind_(call_kind),
        callee_(std::move(callee)),
        receiver_(std::move(receiver)),
        args_(std::move(args)) {}

  CallKind call_kind() const { return call_kind_; }
  void set_call_kind(CallKind call_kind) { call_kind_ = call_kind; }
  const std::string& callee() const { return callee_; }
  const Expr* receiver() const { return receiver_.get(); }
  ExprPtr& receiver_slot() { return receiver_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  std::vector<ExprPtr>& mutable_args() { return args_; }

  ExprPtr Clone() const override {
    std::vector<ExprPtr> args_clone;
    args_clone.reserve(args_.size());
    for (const ExprPtr& arg : args_) {
      args_clone.push_back(arg->Clone());
    }
    auto clone = std::make_unique<CallExpr>(call_kind_, callee_,
                                            receiver_ ? receiver_->Clone() : nullptr,
                                            std::move(args_clone));
    clone->CopyMetaFrom(*this);
    return clone;
  }

 private:
  CallKind call_kind_;
  std::string callee_;
  ExprPtr receiver_;
  std::vector<ExprPtr> args_;
};

// Convenience constructors used throughout passes, the generator, and tests.
ExprPtr MakeConstant(uint32_t width, uint64_t bits);
ExprPtr MakeBool(bool value);
ExprPtr MakePath(std::string name);
ExprPtr MakeMember(ExprPtr base, std::string member);
ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);

}  // namespace gauntlet

#endif  // SRC_AST_EXPR_H_
