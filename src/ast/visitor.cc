#include "src/ast/visitor.h"

namespace gauntlet {

void Inspector::VisitProgram(const Program& program) {
  for (const DeclPtr& decl : program.decls()) {
    VisitDecl(*decl);
  }
}

void Inspector::VisitDecl(const Decl& decl) {
  switch (decl.kind()) {
    case DeclKind::kAction: {
      const auto& action = static_cast<const ActionDecl&>(decl);
      OnAction(action);
      VisitStmt(action.body());
      break;
    }
    case DeclKind::kFunction: {
      const auto& function = static_cast<const FunctionDecl&>(decl);
      OnFunction(function);
      VisitStmt(function.body());
      break;
    }
    case DeclKind::kTable: {
      const auto& table = static_cast<const TableDecl&>(decl);
      OnTable(table);
      for (const TableKey& key : table.keys()) {
        VisitExpr(*key.expr);
      }
      for (const ExprPtr& arg : table.default_args()) {
        VisitExpr(*arg);
      }
      break;
    }
    case DeclKind::kControl: {
      const auto& control = static_cast<const ControlDecl&>(decl);
      OnControl(control);
      for (const DeclPtr& local : control.locals()) {
        VisitDecl(*local);
      }
      VisitStmt(control.apply());
      break;
    }
    case DeclKind::kParser: {
      const auto& parser = static_cast<const ParserDecl&>(decl);
      OnParser(parser);
      for (const ParserState& state : parser.states()) {
        for (const StmtPtr& stmt : state.statements) {
          VisitStmt(*stmt);
        }
        if (state.select_expr != nullptr) {
          VisitExpr(*state.select_expr);
        }
        for (const SelectCase& select_case : state.cases) {
          if (select_case.value != nullptr) {
            VisitExpr(*select_case.value);
          }
        }
      }
      break;
    }
  }
}

void Inspector::VisitStmt(const Stmt& stmt) {
  OnStmt(stmt);
  switch (stmt.kind()) {
    case StmtKind::kBlock: {
      const auto& block = static_cast<const BlockStmt&>(stmt);
      for (const StmtPtr& child : block.statements()) {
        VisitStmt(*child);
      }
      break;
    }
    case StmtKind::kAssign: {
      const auto& assign = static_cast<const AssignStmt&>(stmt);
      VisitExpr(assign.target());
      VisitExpr(assign.value());
      break;
    }
    case StmtKind::kIf: {
      const auto& if_stmt = static_cast<const IfStmt&>(stmt);
      VisitExpr(if_stmt.cond());
      VisitStmt(if_stmt.then_branch());
      if (if_stmt.else_branch() != nullptr) {
        VisitStmt(*if_stmt.else_branch());
      }
      break;
    }
    case StmtKind::kVarDecl: {
      const auto& var_decl = static_cast<const VarDeclStmt&>(stmt);
      if (var_decl.init() != nullptr) {
        VisitExpr(*var_decl.init());
      }
      break;
    }
    case StmtKind::kCall: {
      const auto& call_stmt = static_cast<const CallStmt&>(stmt);
      VisitExpr(call_stmt.call());
      break;
    }
    case StmtKind::kReturn: {
      const auto& return_stmt = static_cast<const ReturnStmt&>(stmt);
      if (return_stmt.value() != nullptr) {
        VisitExpr(*return_stmt.value());
      }
      break;
    }
    case StmtKind::kExit:
    case StmtKind::kEmpty:
      break;
  }
}

void Inspector::VisitExpr(const Expr& expr) {
  OnExpr(expr);
  switch (expr.kind()) {
    case ExprKind::kConstant:
    case ExprKind::kBoolConst:
    case ExprKind::kPath:
      break;
    case ExprKind::kMember:
      VisitExpr(static_cast<const MemberExpr&>(expr).base());
      break;
    case ExprKind::kSlice:
      VisitExpr(static_cast<const SliceExpr&>(expr).base());
      break;
    case ExprKind::kUnary:
      VisitExpr(static_cast<const UnaryExpr&>(expr).operand());
      break;
    case ExprKind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      VisitExpr(binary.left());
      VisitExpr(binary.right());
      break;
    }
    case ExprKind::kMux: {
      const auto& mux = static_cast<const MuxExpr&>(expr);
      VisitExpr(mux.cond());
      VisitExpr(mux.then_expr());
      VisitExpr(mux.else_expr());
      break;
    }
    case ExprKind::kCast:
      VisitExpr(static_cast<const CastExpr&>(expr).operand());
      break;
    case ExprKind::kCall: {
      const auto& call = static_cast<const CallExpr&>(expr);
      if (call.receiver() != nullptr) {
        VisitExpr(*call.receiver());
      }
      for (const ExprPtr& arg : call.args()) {
        VisitExpr(*arg);
      }
      break;
    }
  }
}

void Rewriter::RewriteProgram(Program& program) {
  for (const DeclPtr& decl : program.mutable_decls()) {
    RewriteDecl(*decl);
  }
}

void Rewriter::RewriteDecl(Decl& decl) {
  switch (decl.kind()) {
    case DeclKind::kAction: {
      auto& action = static_cast<ActionDecl&>(decl);
      RewriteBlock(*action.mutable_body());
      PostActionDecl(action);
      break;
    }
    case DeclKind::kFunction: {
      auto& function = static_cast<FunctionDecl&>(decl);
      RewriteBlock(*function.mutable_body());
      break;
    }
    case DeclKind::kTable: {
      auto& table = static_cast<TableDecl&>(decl);
      for (TableKey& key : table.mutable_keys()) {
        RewriteExpr(key.expr);
      }
      for (ExprPtr& arg : table.mutable_default_args()) {
        RewriteExpr(arg);
      }
      PostTableDecl(table);
      break;
    }
    case DeclKind::kControl: {
      auto& control = static_cast<ControlDecl&>(decl);
      for (const DeclPtr& local : control.mutable_locals()) {
        RewriteDecl(*local);
      }
      RewriteBlock(*control.mutable_apply());
      PostControlDecl(control);
      break;
    }
    case DeclKind::kParser: {
      auto& parser = static_cast<ParserDecl&>(decl);
      for (ParserState& state : parser.mutable_states()) {
        for (StmtPtr& stmt : state.statements) {
          RewriteStmt(stmt);
        }
        if (state.select_expr != nullptr) {
          RewriteExpr(state.select_expr);
        }
      }
      break;
    }
  }
}

void Rewriter::RewriteBlock(BlockStmt& block) {
  for (StmtPtr& stmt : block.mutable_statements()) {
    RewriteStmt(stmt);
  }
  FlattenBlocks(block);
}

void Rewriter::RewriteStmt(StmtPtr& slot) {
  Stmt& stmt = *slot;
  StmtPtr replacement;
  switch (stmt.kind()) {
    case StmtKind::kBlock: {
      auto& block = static_cast<BlockStmt&>(stmt);
      for (StmtPtr& child : block.mutable_statements()) {
        RewriteStmt(child);
      }
      FlattenBlocks(block);
      replacement = PostBlock(block);
      break;
    }
    case StmtKind::kAssign: {
      auto& assign = static_cast<AssignStmt&>(stmt);
      if (RewritesLValues()) {
        RewriteExpr(assign.target_slot());
      }
      RewriteExpr(assign.value_slot());
      replacement = PostAssign(assign);
      break;
    }
    case StmtKind::kIf: {
      auto& if_stmt = static_cast<IfStmt&>(stmt);
      RewriteExpr(if_stmt.cond_slot());
      RewriteStmt(if_stmt.then_slot());
      if (if_stmt.else_slot() != nullptr) {
        RewriteStmt(if_stmt.else_slot());
      }
      replacement = PostIf(if_stmt);
      break;
    }
    case StmtKind::kVarDecl: {
      auto& var_decl = static_cast<VarDeclStmt&>(stmt);
      if (var_decl.init() != nullptr) {
        RewriteExpr(var_decl.init_slot());
      }
      replacement = PostVarDecl(var_decl);
      break;
    }
    case StmtKind::kCall: {
      auto& call_stmt = static_cast<CallStmt&>(stmt);
      RewriteExpr(call_stmt.call_slot());
      replacement = PostCallStmt(call_stmt);
      break;
    }
    case StmtKind::kExit:
      replacement = PostExit(static_cast<ExitStmt&>(stmt));
      break;
    case StmtKind::kReturn: {
      auto& return_stmt = static_cast<ReturnStmt&>(stmt);
      if (return_stmt.value() != nullptr) {
        RewriteExpr(return_stmt.value_slot());
      }
      replacement = PostReturn(return_stmt);
      break;
    }
    case StmtKind::kEmpty:
      break;
  }
  if (replacement != nullptr) {
    slot = std::move(replacement);
  }
}

void Rewriter::RewriteExpr(ExprPtr& slot) {
  Expr& expr = *slot;
  ExprPtr replacement;
  switch (expr.kind()) {
    case ExprKind::kConstant:
      replacement = PostConstant(static_cast<ConstantExpr&>(expr));
      break;
    case ExprKind::kBoolConst:
      replacement = PostBoolConst(static_cast<BoolConstExpr&>(expr));
      break;
    case ExprKind::kPath:
      replacement = PostPath(static_cast<PathExpr&>(expr));
      break;
    case ExprKind::kMember: {
      auto& member = static_cast<MemberExpr&>(expr);
      RewriteExpr(member.base_slot());
      replacement = PostMember(member);
      break;
    }
    case ExprKind::kSlice: {
      auto& slice = static_cast<SliceExpr&>(expr);
      RewriteExpr(slice.base_slot());
      replacement = PostSlice(slice);
      break;
    }
    case ExprKind::kUnary: {
      auto& unary = static_cast<UnaryExpr&>(expr);
      RewriteExpr(unary.operand_slot());
      replacement = PostUnary(unary);
      break;
    }
    case ExprKind::kBinary: {
      auto& binary = static_cast<BinaryExpr&>(expr);
      RewriteExpr(binary.left_slot());
      RewriteExpr(binary.right_slot());
      replacement = PostBinary(binary);
      break;
    }
    case ExprKind::kMux: {
      auto& mux = static_cast<MuxExpr&>(expr);
      RewriteExpr(mux.cond_slot());
      RewriteExpr(mux.then_slot());
      RewriteExpr(mux.else_slot());
      replacement = PostMux(mux);
      break;
    }
    case ExprKind::kCast: {
      auto& cast = static_cast<CastExpr&>(expr);
      RewriteExpr(cast.operand_slot());
      replacement = PostCast(cast);
      break;
    }
    case ExprKind::kCall: {
      auto& call = static_cast<CallExpr&>(expr);
      // The receiver of validity/extract/emit methods is an l-value.
      if (call.receiver_slot() != nullptr && RewritesLValues()) {
        RewriteExpr(call.receiver_slot());
      }
      for (ExprPtr& arg : call.mutable_args()) {
        RewriteExpr(arg);
      }
      replacement = PostCall(call);
      break;
    }
  }
  if (replacement != nullptr) {
    slot = std::move(replacement);
  }
}

void FlattenBlocks(BlockStmt& block) {
  std::vector<StmtPtr> flattened;
  flattened.reserve(block.statements().size());
  for (StmtPtr& stmt : block.mutable_statements()) {
    if (stmt->kind() == StmtKind::kEmpty) {
      continue;
    }
    if (stmt->kind() == StmtKind::kBlock) {
      // P4 blocks do not open a new variable scope boundary that matters
      // after uniquification, so nested blocks can be inlined textually.
      auto& nested = static_cast<BlockStmt&>(*stmt);
      for (StmtPtr& child : nested.mutable_statements()) {
        if (child->kind() != StmtKind::kEmpty) {
          flattened.push_back(std::move(child));
        }
      }
      continue;
    }
    flattened.push_back(std::move(stmt));
  }
  block.mutable_statements() = std::move(flattened);
}

}  // namespace gauntlet
