#include "src/ast/program.h"

namespace gauntlet {

std::string BlockRoleToString(BlockRole role) {
  switch (role) {
    case BlockRole::kParser:
      return "parser";
    case BlockRole::kIngress:
      return "ingress";
    case BlockRole::kEgress:
      return "egress";
    case BlockRole::kDeparser:
      return "deparser";
  }
  return "<invalid>";
}

std::unique_ptr<Program> Program::Clone() const {
  auto clone = std::make_unique<Program>();
  for (const TypePtr& type : type_decls_) {
    clone->AddType(type);  // types are immutable, shared by design
  }
  for (const DeclPtr& decl : decls_) {
    clone->AddDecl(decl->CloneDecl());
  }
  clone->package_ = package_;
  return clone;
}

void Program::AddType(TypePtr type) {
  GAUNTLET_BUG_CHECK(type->IsStructLike(), "only header/struct types are declared");
  types_by_name_[type->name()] = type;
  type_decls_.push_back(std::move(type));
}

TypePtr Program::FindType(const std::string& name) const {
  auto it = types_by_name_.find(name);
  return it == types_by_name_.end() ? nullptr : it->second;
}

Decl* Program::FindDecl(const std::string& name) const {
  for (const DeclPtr& decl : decls_) {
    if (decl->name() == name) {
      return decl.get();
    }
  }
  return nullptr;
}

ControlDecl* Program::FindControl(const std::string& name) const {
  Decl* decl = FindDecl(name);
  if (decl != nullptr && decl->kind() == DeclKind::kControl) {
    return static_cast<ControlDecl*>(decl);
  }
  return nullptr;
}

ParserDecl* Program::FindParser(const std::string& name) const {
  Decl* decl = FindDecl(name);
  if (decl != nullptr && decl->kind() == DeclKind::kParser) {
    return static_cast<ParserDecl*>(decl);
  }
  return nullptr;
}

FunctionDecl* Program::FindFunction(const std::string& name) const {
  Decl* decl = FindDecl(name);
  if (decl != nullptr && decl->kind() == DeclKind::kFunction) {
    return static_cast<FunctionDecl*>(decl);
  }
  return nullptr;
}

const PackageBlock* Program::FindBlock(BlockRole role) const {
  for (const PackageBlock& block : package_) {
    if (block.role == role) {
      return &block;
    }
  }
  return nullptr;
}

}  // namespace gauntlet
