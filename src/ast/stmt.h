#ifndef SRC_AST_STMT_H_
#define SRC_AST_STMT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ast/expr.h"

namespace gauntlet {

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind {
  kBlock,
  kAssign,
  kIf,
  kVarDecl,
  kCall,    // expression-statement wrapping a CallExpr
  kExit,    // terminate the whole control block
  kReturn,  // return from function/action (optionally with a value)
  kEmpty,   // `;` — produced by some passes when deleting statements
};

class Stmt {
 public:
  virtual ~Stmt() = default;

  StmtKind kind() const { return kind_; }
  const SourceLocation& loc() const { return loc_; }
  void set_loc(SourceLocation loc) { loc_ = loc; }

  virtual StmtPtr Clone() const = 0;

 protected:
  explicit Stmt(StmtKind kind) : kind_(kind) {}

 private:
  StmtKind kind_;
  SourceLocation loc_;
};

class BlockStmt : public Stmt {
 public:
  explicit BlockStmt(std::vector<StmtPtr> statements = {})
      : Stmt(StmtKind::kBlock), statements_(std::move(statements)) {}

  const std::vector<StmtPtr>& statements() const { return statements_; }
  std::vector<StmtPtr>& mutable_statements() { return statements_; }
  void Append(StmtPtr stmt) { statements_.push_back(std::move(stmt)); }

  StmtPtr Clone() const override {
    std::vector<StmtPtr> clones;
    clones.reserve(statements_.size());
    for (const StmtPtr& stmt : statements_) {
      clones.push_back(stmt->Clone());
    }
    auto clone = std::make_unique<BlockStmt>(std::move(clones));
    clone->set_loc(loc());
    return clone;
  }

 private:
  std::vector<StmtPtr> statements_;
};

class AssignStmt : public Stmt {
 public:
  AssignStmt(ExprPtr target, ExprPtr value)
      : Stmt(StmtKind::kAssign), target_(std::move(target)), value_(std::move(value)) {}

  const Expr& target() const { return *target_; }
  const Expr& value() const { return *value_; }
  ExprPtr& target_slot() { return target_; }
  ExprPtr& value_slot() { return value_; }

  StmtPtr Clone() const override {
    auto clone = std::make_unique<AssignStmt>(target_->Clone(), value_->Clone());
    clone->set_loc(loc());
    return clone;
  }

 private:
  ExprPtr target_;
  ExprPtr value_;
};

class IfStmt : public Stmt {
 public:
  IfStmt(ExprPtr cond, StmtPtr then_branch, StmtPtr else_branch)
      : Stmt(StmtKind::kIf),
        cond_(std::move(cond)),
        then_(std::move(then_branch)),
        else_(std::move(else_branch)) {}

  const Expr& cond() const { return *cond_; }
  const Stmt& then_branch() const { return *then_; }
  const Stmt* else_branch() const { return else_.get(); }
  ExprPtr& cond_slot() { return cond_; }
  StmtPtr& then_slot() { return then_; }
  StmtPtr& else_slot() { return else_; }

  StmtPtr Clone() const override {
    auto clone = std::make_unique<IfStmt>(cond_->Clone(), then_->Clone(),
                                          else_ ? else_->Clone() : nullptr);
    clone->set_loc(loc());
    return clone;
  }

 private:
  ExprPtr cond_;
  StmtPtr then_;
  StmtPtr else_;  // may be null
};

class VarDeclStmt : public Stmt {
 public:
  VarDeclStmt(std::string name, TypePtr var_type, ExprPtr init)
      : Stmt(StmtKind::kVarDecl),
        name_(std::move(name)),
        var_type_(std::move(var_type)),
        init_(std::move(init)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const TypePtr& var_type() const { return var_type_; }
  const Expr* init() const { return init_.get(); }
  ExprPtr& init_slot() { return init_; }

  StmtPtr Clone() const override {
    auto clone = std::make_unique<VarDeclStmt>(name_, var_type_, init_ ? init_->Clone() : nullptr);
    clone->set_loc(loc());
    return clone;
  }

 private:
  std::string name_;
  TypePtr var_type_;
  ExprPtr init_;  // may be null — variable starts undefined
};

class CallStmt : public Stmt {
 public:
  explicit CallStmt(ExprPtr call) : Stmt(StmtKind::kCall), call_(std::move(call)) {}

  const CallExpr& call() const { return static_cast<const CallExpr&>(*call_); }
  CallExpr& mutable_call() { return static_cast<CallExpr&>(*call_); }
  ExprPtr& call_slot() { return call_; }

  StmtPtr Clone() const override {
    auto clone = std::make_unique<CallStmt>(call_->Clone());
    clone->set_loc(loc());
    return clone;
  }

 private:
  ExprPtr call_;  // always a CallExpr
};

class ExitStmt : public Stmt {
 public:
  ExitStmt() : Stmt(StmtKind::kExit) {}

  StmtPtr Clone() const override {
    auto clone = std::make_unique<ExitStmt>();
    clone->set_loc(loc());
    return clone;
  }
};

class ReturnStmt : public Stmt {
 public:
  explicit ReturnStmt(ExprPtr value) : Stmt(StmtKind::kReturn), value_(std::move(value)) {}

  const Expr* value() const { return value_.get(); }
  ExprPtr& value_slot() { return value_; }

  StmtPtr Clone() const override {
    auto clone = std::make_unique<ReturnStmt>(value_ ? value_->Clone() : nullptr);
    clone->set_loc(loc());
    return clone;
  }

 private:
  ExprPtr value_;  // may be null
};

class EmptyStmt : public Stmt {
 public:
  EmptyStmt() : Stmt(StmtKind::kEmpty) {}

  StmtPtr Clone() const override {
    auto clone = std::make_unique<EmptyStmt>();
    clone->set_loc(loc());
    return clone;
  }
};

}  // namespace gauntlet

#endif  // SRC_AST_STMT_H_
