#ifndef SRC_AST_VISITOR_H_
#define SRC_AST_VISITOR_H_

#include "src/ast/program.h"

namespace gauntlet {

// Read-only traversal over a program. Subclasses override the hooks they
// care about; every hook is called before the node's children are visited.
class Inspector {
 public:
  virtual ~Inspector() = default;

  void VisitProgram(const Program& program);
  void VisitDecl(const Decl& decl);
  void VisitStmt(const Stmt& stmt);
  void VisitExpr(const Expr& expr);

 protected:
  virtual void OnControl(const ControlDecl&) {}
  virtual void OnParser(const ParserDecl&) {}
  virtual void OnAction(const ActionDecl&) {}
  virtual void OnFunction(const FunctionDecl&) {}
  virtual void OnTable(const TableDecl&) {}
  virtual void OnStmt(const Stmt&) {}
  virtual void OnExpr(const Expr&) {}
};

// Bottom-up in-place rewriter. The traversal rewrites children first, then
// offers the node to the matching Post hook; returning non-null replaces the
// node. Statement hooks may replace a statement with an EmptyStmt (delete)
// or a BlockStmt (expansion into several statements).
class Rewriter {
 public:
  virtual ~Rewriter() = default;

  void RewriteProgram(Program& program);
  void RewriteDecl(Decl& decl);
  void RewriteStmt(StmtPtr& slot);
  void RewriteExpr(ExprPtr& slot);
  void RewriteBlock(BlockStmt& block);

 protected:
  // --- expression hooks (post-order) ---
  virtual ExprPtr PostConstant(ConstantExpr&) { return nullptr; }
  virtual ExprPtr PostBoolConst(BoolConstExpr&) { return nullptr; }
  virtual ExprPtr PostPath(PathExpr&) { return nullptr; }
  virtual ExprPtr PostMember(MemberExpr&) { return nullptr; }
  virtual ExprPtr PostSlice(SliceExpr&) { return nullptr; }
  virtual ExprPtr PostUnary(UnaryExpr&) { return nullptr; }
  virtual ExprPtr PostBinary(BinaryExpr&) { return nullptr; }
  virtual ExprPtr PostMux(MuxExpr&) { return nullptr; }
  virtual ExprPtr PostCast(CastExpr&) { return nullptr; }
  virtual ExprPtr PostCall(CallExpr&) { return nullptr; }

  // --- statement hooks (post-order) ---
  virtual StmtPtr PostAssign(AssignStmt&) { return nullptr; }
  virtual StmtPtr PostIf(IfStmt&) { return nullptr; }
  virtual StmtPtr PostVarDecl(VarDeclStmt&) { return nullptr; }
  virtual StmtPtr PostCallStmt(CallStmt&) { return nullptr; }
  virtual StmtPtr PostExit(ExitStmt&) { return nullptr; }
  virtual StmtPtr PostReturn(ReturnStmt&) { return nullptr; }
  virtual StmtPtr PostBlock(BlockStmt&) { return nullptr; }

  // --- declaration hooks ---
  virtual void PostActionDecl(ActionDecl&) {}
  virtual void PostTableDecl(TableDecl&) {}
  virtual void PostControlDecl(ControlDecl&) {}

  // Whether the rewriter should descend into l-value positions (assignment
  // targets, out-arguments). Most expression-simplifying passes must not
  // rewrite l-values structurally, only their sub-indices.
  virtual bool RewritesLValues() const { return true; }
};

// Flattens directly-nested blocks and drops EmptyStmt, normalizing trees
// after rewriters that delete/expand statements.
void FlattenBlocks(BlockStmt& block);

}  // namespace gauntlet

#endif  // SRC_AST_VISITOR_H_
