#ifndef SRC_AST_TYPE_H_
#define SRC_AST_TYPE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/support/error.h"

namespace gauntlet {

class Type;
using TypePtr = std::shared_ptr<const Type>;

// A P4-16 type. Types are immutable and shared; header and struct types are
// interned in a TypeTable by name so that pointer equality works for named
// types and value equality works for bit<N>/bool.
class Type {
 public:
  enum class Kind {
    kVoid,
    kBool,
    kBit,     // bit<N>, 1 <= N <= 64
    kHeader,  // header with validity bit; fields restricted to bit<N>/bool
    kStruct,  // plain struct; fields may be any non-void type
  };

  struct Field {
    std::string name;
    TypePtr type;
  };

  static TypePtr Void();
  static TypePtr Bool();
  static TypePtr Bit(uint32_t width);
  static TypePtr MakeHeader(std::string name, std::vector<Field> fields);
  static TypePtr MakeStruct(std::string name, std::vector<Field> fields);

  Kind kind() const { return kind_; }
  bool IsBit() const { return kind_ == Kind::kBit; }
  bool IsBool() const { return kind_ == Kind::kBool; }
  bool IsHeader() const { return kind_ == Kind::kHeader; }
  bool IsStruct() const { return kind_ == Kind::kStruct; }
  bool IsStructLike() const { return IsHeader() || IsStruct(); }
  bool IsVoid() const { return kind_ == Kind::kVoid; }

  // Only valid for kBit.
  uint32_t width() const {
    GAUNTLET_BUG_CHECK(kind_ == Kind::kBit, "width() on non-bit type");
    return width_;
  }

  // Only valid for header/struct.
  const std::string& name() const { return name_; }
  const std::vector<Field>& fields() const { return fields_; }
  const Field* FindField(const std::string& field_name) const;

  // Structural type equality (named types compare by name + fields).
  bool Equals(const Type& other) const;

  // Source-syntax rendering, e.g. "bit<8>", "Hdr".
  std::string ToString() const;

 private:
  Type(Kind kind, uint32_t width, std::string name, std::vector<Field> fields)
      : kind_(kind), width_(width), name_(std::move(name)), fields_(std::move(fields)) {}

  Kind kind_;
  uint32_t width_ = 0;
  std::string name_;
  std::vector<Field> fields_;
};

// Parameter/argument passing mode ("direction", P4-16 section 6.7). kNone is
// a directionless parameter: forbidden on controls/functions, but on actions
// it denotes control-plane-provided action data.
enum class Direction {
  kNone,
  kIn,
  kInOut,
  kOut,
};

std::string DirectionToString(Direction direction);

}  // namespace gauntlet

#endif  // SRC_AST_TYPE_H_
