#ifndef SRC_SYM_VALUE_H_
#define SRC_SYM_VALUE_H_

#include <map>
#include <string>
#include <vector>

#include "src/ast/type.h"
#include "src/smt/expr.h"

namespace gauntlet {

// The symbolic value of a P4 variable: either a scalar (bit<N>/bool SMT ref)
// or a struct-like tree of named fields. Headers additionally carry a
// symbolic validity bit.
struct SymValue {
  TypePtr type;
  SmtRef scalar;  // set iff type is bit/bool
  std::vector<std::pair<std::string, SymValue>> fields;  // struct/header
  SmtRef valid;  // headers only (bool ref)

  bool IsScalar() const { return type->IsBit() || type->IsBool(); }

  SymValue* FindField(const std::string& name) {
    for (auto& [field_name, value] : fields) {
      if (field_name == name) {
        return &value;
      }
    }
    return nullptr;
  }
  const SymValue* FindField(const std::string& name) const {
    for (const auto& [field_name, value] : fields) {
      if (field_name == name) {
        return &value;
      }
    }
    return nullptr;
  }
};

// A lexically scoped symbolic environment. Layers correspond to call frames
// and block scopes; lookups search from the innermost layer outwards, and
// writes mutate the binding in the layer where the name resolves (so actions
// mutate captured control parameters, per P4 scoping).
class SymEnv {
 public:
  void PushLayer() { layers_.emplace_back(); }
  void PopLayer() { layers_.pop_back(); }
  size_t LayerCount() const { return layers_.size(); }

  void Bind(const std::string& name, SymValue value) {
    GAUNTLET_BUG_CHECK(!layers_.empty(), "Bind with no scope layer");
    layers_.back()[name] = std::move(value);
  }

  SymValue* Find(const std::string& name) {
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        return &found->second;
      }
    }
    return nullptr;
  }

  // A call frame hides everything except the outermost (control-parameter)
  // layer. `visible_floor` is the number of outer layers still visible.
  // This interpreter keeps it simple: actions/functions see layer 0 plus
  // their own frame. Enforced by the interpreter, not the container.

 private:
  std::vector<std::map<std::string, SymValue>> layers_;
};

}  // namespace gauntlet

#endif  // SRC_SYM_VALUE_H_
