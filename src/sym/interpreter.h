#ifndef SRC_SYM_INTERPRETER_H_
#define SRC_SYM_INTERPRETER_H_

#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/smt/expr.h"
#include "src/sym/value.h"

namespace gauntlet {

// Symbolic variable names of the control-plane state of one table: one
// symbolic match key per key column and one symbolic action index, encoding
// arbitrary table contents with O(1) symbolic variables (paper Figure 3).
struct TableInfo {
  std::string table_name;
  std::vector<std::string> key_vars;    // "t_key_0", ... (bit vars)
  std::string action_var;               // "t_action" (bit<16> var)
  std::vector<std::string> action_names;  // listed actions; index i selects value i+1
  // action_data_vars[i] are the symbolic control-plane argument names for
  // action_names[i].
  std::vector<std::vector<std::string>> action_data_vars;
  // The unguarded hit condition (key expression == key vars); False for
  // keyless tables. Lets a model consumer distinguish "this path hits the
  // installed entry" from "the action index merely landed in range".
  SmtRef hit_condition;
};

// The input-output semantics of one programmable block, as a functional
// form over the SmtContext (the paper's "single nested if-then-else Z3
// expression", section 5.2, here factored into one expression per output
// leaf).
struct BlockSemantics {
  // Ordered (leaf name, expression) pairs: field paths like "hdr.h.a",
  // validity leaves like "hdr.h.$valid", deparser emissions like
  // "emit0.$valid"/"emit0.bits", and the parser-reject flag "$reject".
  std::vector<std::pair<std::string, SmtRef>> outputs;

  // Decision conditions recorded in evaluation order: if-conditions, table
  // hit/action-selection conditions, parser select matches. Drives the
  // test-case generator's path enumeration (section 6).
  std::vector<SmtRef> branch_conditions;

  // Symbolic control-plane state of every applied table.
  std::vector<TableInfo> tables;

  // Names of the free input variables created for this block, in creation
  // order (field paths for in/inout params, packet slices for parsers).
  std::vector<std::string> input_vars;

  const SmtRef* FindOutput(const std::string& name) const {
    for (const auto& [output_name, ref] : outputs) {
      if (output_name == name) {
        return &ref;
      }
    }
    return nullptr;
  }
};

// Whole-pipeline semantics: per-block semantics plus the glue equalities
// that connect one block's outputs to the next block's inputs.
struct PipelineSemantics {
  BlockSemantics parser;
  BlockSemantics ingress;
  BlockSemantics egress;
  BlockSemantics deparser;
  bool has_parser = false;
  bool has_egress = false;
  bool has_deparser = false;
  // Conjunction-ready constraints: next-block input var == previous-block
  // output expression.
  std::vector<SmtRef> glue;
  // Names of downstream input variables covered by a glue constraint;
  // everything else (e.g. standard metadata) is target-initialized.
  std::vector<std::string> glued_inputs;
};

// The symbolic interpreter: converts P4 blocks into SMT formulas. It
// implements the semantics the paper defines for P4-16:
//   * copy-in/copy-out calling convention with left-to-right argument
//     evaluation and unconditional copy-out (the spec interpretation that
//     resolved the Fig. 5f ambiguity);
//   * symbolic per-table key and action-index variables (Fig. 3);
//   * header validity: setValid on an invalid header scrambles the fields
//     to fresh unknowns; invalid headers contribute canonical zeros to the
//     block outputs;
//   * undefined values (out params, uninitialized locals) become fresh
//     named variables "undef<N>" numbered in interpretation order.
//
// One interpreter interprets into one SmtContext; both programs of a
// translation-validation pair must use the same context so identically
// named inputs unify.
class SymbolicInterpreter {
 public:
  explicit SymbolicInterpreter(SmtContext& context) : context_(context) {}

  // Interprets a control bound as ingress/egress (match-action) or deparser.
  BlockSemantics InterpretControl(const Program& program, const ControlDecl& control,
                                  bool is_deparser);
  // Interprets a parser block via bounded state-machine unrolling.
  BlockSemantics InterpretParser(const Program& program, const ParserDecl& parser);

  // Interprets every bound package block with glue constraints between
  // consecutive blocks.
  PipelineSemantics InterpretPipeline(const Program& program);

  // Interprets the block bound to `role`.
  BlockSemantics InterpretRole(const Program& program, BlockRole role);

  SmtContext& context() { return context_; }

  // Maximum parser state visits along one path before the interpreter
  // reports an unsupported parser loop.
  static constexpr int kMaxParserDepth = 32;

 private:
  friend class InterpreterImpl;
  SmtContext& context_;
};

// Checks two block semantics for input-output equivalence: returns an
// SmtRef that is satisfiable iff the blocks disagree on some input
// (the "simple inequality" query of section 5.2). Output leaf names must
// match pairwise; a structural mismatch is reported via the `structural_
// mismatch` out-param instead of a formula.
struct EquivalenceQuery {
  bool structural_mismatch = false;
  std::string mismatch_detail;
  SmtRef difference;  // valid iff !structural_mismatch
};
EquivalenceQuery BuildEquivalenceQuery(SmtContext& context, const BlockSemantics& before,
                                       const BlockSemantics& after);

}  // namespace gauntlet

#endif  // SRC_SYM_INTERPRETER_H_
