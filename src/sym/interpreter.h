#ifndef SRC_SYM_INTERPRETER_H_
#define SRC_SYM_INTERPRETER_H_

#include <string>
#include <vector>

#include "src/ast/program.h"
#include "src/smt/expr.h"
#include "src/sym/value.h"
#include "src/table/entry_set.h"

namespace gauntlet {

// The number of symbolic entry slots the interpreter encodes per table by
// default (src/table/entry_set.h, paper Fig. 3 generalized to N entries).
// Two slots make entry shadowing and non-first-entry hits symbolically
// reachable while keeping formula growth linear in N.
inline constexpr size_t kDefaultSymbolicTableEntries = 2;

// The input-output semantics of one programmable block, as a functional
// form over the SmtContext (the paper's "single nested if-then-else Z3
// expression", section 5.2, here factored into one expression per output
// leaf).
struct BlockSemantics {
  // Ordered (leaf name, expression) pairs: field paths like "hdr.h.a",
  // validity leaves like "hdr.h.$valid", deparser emissions like
  // "emit0.$valid"/"emit0.bits", and the parser-reject flag "$reject".
  std::vector<std::pair<std::string, SmtRef>> outputs;

  // Decision conditions recorded in evaluation order: if-conditions, table
  // entry-win / entry-overlap / action-selection conditions, parser select
  // matches. Drives the test-case generator's path enumeration (section 6).
  std::vector<SmtRef> branch_conditions;

  // Parallel to branch_conditions: what kind of decision each condition is
  // ("if", "entry-win", "entry-overlap", "action-select", "parser-select").
  // Feeds the "path-shape" coverage domain's branch-kind census.
  std::vector<std::string> branch_kinds;

  // Symbolic control-plane state of every applied table (the N-entry
  // encoding of src/table/entry_set.h).
  std::vector<TableInfo> tables;

  // Names of the free input variables created for this block, in creation
  // order (field paths for in/inout params, packet slices for parsers).
  std::vector<std::string> input_vars;

  const SmtRef* FindOutput(const std::string& name) const {
    for (const auto& [output_name, ref] : outputs) {
      if (output_name == name) {
        return &ref;
      }
    }
    return nullptr;
  }
};

// Whole-pipeline semantics: per-block semantics plus the glue equalities
// that connect one block's outputs to the next block's inputs.
struct PipelineSemantics {
  BlockSemantics parser;
  BlockSemantics ingress;
  BlockSemantics egress;
  BlockSemantics deparser;
  bool has_parser = false;
  bool has_egress = false;
  bool has_deparser = false;
  // Conjunction-ready constraints: next-block input var == previous-block
  // output expression.
  std::vector<SmtRef> glue;
  // Names of downstream input variables covered by a glue constraint;
  // everything else (e.g. standard metadata) is target-initialized.
  std::vector<std::string> glued_inputs;
};

// The symbolic interpreter: converts P4 blocks into SMT formulas. It
// implements the semantics the paper defines for P4-16:
//   * copy-in/copy-out calling convention with left-to-right argument
//     evaluation and unconditional copy-out (the spec interpretation that
//     resolved the Fig. 5f ambiguity);
//   * N symbolic entry slots per table — per-slot key / action-index /
//     action-data / priority variables (Fig. 3 generalized; the encoding
//     itself lives in src/table/entry_set.h so it cannot drift from the
//     concrete executor's table semantics);
//   * header validity: setValid on an invalid header scrambles the fields
//     to fresh unknowns; invalid headers contribute canonical zeros to the
//     block outputs;
//   * undefined values (out params, uninitialized locals) become fresh
//     named variables "undef<N>" numbered in interpretation order.
//
// One interpreter interprets into one SmtContext; both programs of a
// translation-validation pair must use the same context — and the same
// `table_entries` count, so their table encodings unify variable-for-
// variable.
class SymbolicInterpreter {
 public:
  explicit SymbolicInterpreter(SmtContext& context,
                               size_t table_entries = kDefaultSymbolicTableEntries)
      : context_(context), table_entries_(table_entries == 0 ? 1 : table_entries) {}

  // Interprets a control bound as ingress/egress (match-action) or deparser.
  BlockSemantics InterpretControl(const Program& program, const ControlDecl& control,
                                  bool is_deparser);
  // Interprets a parser block via bounded state-machine unrolling.
  BlockSemantics InterpretParser(const Program& program, const ParserDecl& parser);

  // Interprets every bound package block with glue constraints between
  // consecutive blocks.
  PipelineSemantics InterpretPipeline(const Program& program);

  // Interprets the block bound to `role`.
  BlockSemantics InterpretRole(const Program& program, BlockRole role);

  SmtContext& context() { return context_; }
  size_t table_entries() const { return table_entries_; }

  // Maximum parser state visits along one path before the interpreter
  // reports an unsupported parser loop.
  static constexpr int kMaxParserDepth = 32;

 private:
  friend class InterpreterImpl;
  SmtContext& context_;
  size_t table_entries_;
};

// Checks two block semantics for input-output equivalence: returns an
// SmtRef that is satisfiable iff the blocks disagree on some input
// (the "simple inequality" query of section 5.2). Output leaf names must
// match pairwise; a structural mismatch is reported via the `structural_
// mismatch` out-param instead of a formula.
struct EquivalenceQuery {
  bool structural_mismatch = false;
  std::string mismatch_detail;
  SmtRef difference;  // valid iff !structural_mismatch
};
EquivalenceQuery BuildEquivalenceQuery(SmtContext& context, const BlockSemantics& before,
                                       const BlockSemantics& after);

}  // namespace gauntlet

#endif  // SRC_SYM_INTERPRETER_H_
