#include "src/sym/interpreter.h"

#include "src/support/error.h"
#include "src/table/table_model.h"

namespace gauntlet {

namespace {

// Shared implementation state for interpreting one block.
class InterpreterImpl {
 public:
  InterpreterImpl(SmtContext& context, const Program& program, const std::string& prefix,
                  size_t table_entries)
      : ctx_(context), program_(program), prefix_(prefix), table_entries_(table_entries) {
    exited_ = ctx_.False();
  }

  BlockSemantics InterpretControl(const ControlDecl& control, bool is_deparser) {
    current_control_ = &control;
    in_deparser_ = is_deparser;
    env_.PushLayer();
    BindBlockParams(control.params());
    frames_.push_back(Frame{ctx_.False(), SmtRef{}, nullptr});
    env_.PushLayer();  // apply-body scope
    ExecBlock(control.apply(), ctx_.True());
    env_.PopLayer();
    frames_.pop_back();
    CollectParamOutputs(control.params());
    CollectEmitOutputs();
    result_.outputs.emplace_back("$exited", exited_);
    return std::move(result_);
  }

  BlockSemantics InterpretParser(const ParserDecl& parser) {
    current_parser_ = &parser;
    env_.PushLayer();
    // Parser out-params start with invalid headers and undefined scalars.
    for (const Param& param : parser.params()) {
      SymValue value = MakeUndefValue(*param.type, /*headers_invalid=*/true);
      env_.Bind(param.name, std::move(value));
    }
    frames_.push_back(Frame{ctx_.False(), SmtRef{}, nullptr});
    reject_ = ctx_.False();
    RunParserState("start", ctx_.True(), 0, 0);
    frames_.pop_back();
    CollectParamOutputs(parser.params());
    result_.outputs.emplace_back("$reject", reject_);
    return std::move(result_);
  }

 private:
  struct Frame {
    SmtRef returned;
    SmtRef ret_value;          // accumulated return value (invalid if void/none yet)
    const TypePtr* ret_type;   // null for actions / top level
  };

  // --- setup helpers ---

  // Builds a symbolic input value whose leaves are free variables named by
  // field path, and records them as block inputs.
  SymValue MakeInputValue(const Type& type, const std::string& path) {
    SymValue value;
    value.type = type.IsBit()    ? Type::Bit(type.width())
                 : type.IsBool() ? Type::Bool()
                                 : nullptr;
    if (type.IsBit()) {
      value.scalar = ctx_.Var(prefix_ + path, type.width());
      result_.input_vars.push_back(prefix_ + path);
      return value;
    }
    if (type.IsBool()) {
      value.scalar = ctx_.BoolVar(prefix_ + path);
      result_.input_vars.push_back(prefix_ + path);
      return value;
    }
    // Struct-like: rebuild with the program's interned type.
    value.type = program_.FindType(type.name());
    GAUNTLET_BUG_CHECK(value.type != nullptr, "unknown struct type in MakeInputValue");
    for (const Type::Field& field : type.fields()) {
      value.fields.emplace_back(field.name, MakeInputValue(*field.type, path + "." + field.name));
    }
    if (type.IsHeader()) {
      value.valid = ctx_.BoolVar(prefix_ + path + ".$valid");
      result_.input_vars.push_back(prefix_ + path + ".$valid");
    }
    return value;
  }

  // Builds an undefined value: fresh "undef<N>" variables at every leaf.
  SymValue MakeUndefValue(const Type& type, bool headers_invalid) {
    SymValue value;
    if (type.IsBit()) {
      value.type = Type::Bit(type.width());
      value.scalar = FreshUndef(type.width());
      return value;
    }
    if (type.IsBool()) {
      value.type = Type::Bool();
      value.scalar = FreshUndefBool();
      return value;
    }
    value.type = program_.FindType(type.name());
    GAUNTLET_BUG_CHECK(value.type != nullptr, "unknown struct type in MakeUndefValue");
    for (const Type::Field& field : type.fields()) {
      value.fields.emplace_back(field.name, MakeUndefValue(*field.type, headers_invalid));
    }
    if (type.IsHeader()) {
      value.valid = headers_invalid ? ctx_.False() : FreshUndefBool();
    }
    return value;
  }

  // Undefined values are numbered in interpretation order so that both
  // sides of a translation-validation pair allocate matching names; the
  // width suffix keeps misaligned allocation orders (a pass that reorders
  // or deletes undefined declarations) from colliding — they simply become
  // independent variables and fall into the undef-divergence class.
  SmtRef FreshUndef(uint32_t width) {
    return ctx_.Var(prefix_ + "undef" + std::to_string(undef_counter_++) + "w" +
                        std::to_string(width),
                    width);
  }
  SmtRef FreshUndefBool() {
    return ctx_.BoolVar(prefix_ + "undef" + std::to_string(undef_counter_++) + "b");
  }

  void BindBlockParams(const std::vector<Param>& params) {
    for (const Param& param : params) {
      if (param.direction == Direction::kOut) {
        env_.Bind(param.name, MakeUndefValue(*param.type, /*headers_invalid=*/false));
      } else {
        env_.Bind(param.name, MakeInputValue(*param.type, param.name));
      }
    }
  }

  // --- output collection ---

  void FlattenOutput(const SymValue& value, const std::string& path, SmtRef invalid_mask) {
    if (value.IsScalar()) {
      SmtRef leaf = value.scalar;
      if (invalid_mask.IsValid()) {
        // Fields of invalid headers are canonicalized to zero/false in the
        // block output (paper section 5.2, "Header validity").
        if (value.type->IsBit()) {
          leaf = ctx_.Ite(invalid_mask, leaf, ctx_.Const(value.type->width(), 0));
        } else {
          leaf = ctx_.BoolIte(invalid_mask, leaf, ctx_.False());
        }
      }
      result_.outputs.emplace_back(path, leaf);
      return;
    }
    SmtRef mask = invalid_mask;
    if (value.type->IsHeader()) {
      result_.outputs.emplace_back(path + ".$valid", value.valid);
      mask = mask.IsValid() ? ctx_.BoolAnd(mask, value.valid) : value.valid;
    }
    for (const auto& [name, field] : value.fields) {
      FlattenOutput(field, path + "." + name, mask);
    }
  }

  void CollectParamOutputs(const std::vector<Param>& params) {
    for (const Param& param : params) {
      if (param.direction == Direction::kInOut || param.direction == Direction::kOut) {
        const SymValue* value = env_.Find(param.name);
        GAUNTLET_BUG_CHECK(value != nullptr, "lost block parameter");
        FlattenOutput(*value, param.name, SmtRef{});
      }
    }
  }

  void CollectEmitOutputs() {
    for (const auto& [name, ref] : emits_) {
      result_.outputs.emplace_back(name, ref);
    }
  }

  // --- guards ---

  SmtRef EffectiveGuard(SmtRef path_guard) {
    SmtRef guard = ctx_.BoolAnd(path_guard, ctx_.BoolNot(exited_));
    return ctx_.BoolAnd(guard, ctx_.BoolNot(frames_.back().returned));
  }

  // --- l-values ---

  struct LValueSlot {
    SymValue* leaf = nullptr;  // scalar SymValue being written
    bool is_slice = false;
    uint32_t hi = 0;
    uint32_t lo = 0;
  };

  SymValue* ResolveValue(const Expr& expr) {
    switch (expr.kind()) {
      case ExprKind::kPath: {
        SymValue* value = env_.Find(static_cast<const PathExpr&>(expr).name());
        GAUNTLET_BUG_CHECK(value != nullptr,
                           "unbound variable '" + static_cast<const PathExpr&>(expr).name() +
                               "' at interpretation time");
        return value;
      }
      case ExprKind::kMember: {
        const auto& member = static_cast<const MemberExpr&>(expr);
        SymValue* base = ResolveValue(member.base());
        SymValue* field = base->FindField(member.member());
        GAUNTLET_BUG_CHECK(field != nullptr, "missing field at interpretation time");
        return field;
      }
      default:
        GAUNTLET_BUG_CHECK(false, "not a resolvable l-value shape");
        return nullptr;
    }
  }

  LValueSlot ResolveLValue(const Expr& expr) {
    LValueSlot slot;
    if (expr.kind() == ExprKind::kSlice) {
      const auto& slice = static_cast<const SliceExpr&>(expr);
      slot.leaf = ResolveValue(slice.base());
      slot.is_slice = true;
      slot.hi = slice.hi();
      slot.lo = slice.lo();
    } else {
      slot.leaf = ResolveValue(expr);
    }
    GAUNTLET_BUG_CHECK(slot.leaf->IsScalar(), "assignment to non-scalar l-value");
    return slot;
  }

  // Splices `value` into bits [hi:lo] of `old`.
  SmtRef SpliceBits(SmtRef old_value, uint32_t hi, uint32_t lo, SmtRef value) {
    const uint32_t width = ctx_.WidthOf(old_value);
    SmtRef result = value;
    if (hi + 1 < width) {
      result = ctx_.Concat(ctx_.Extract(old_value, width - 1, hi + 1), result);
    }
    if (lo > 0) {
      result = ctx_.Concat(result, ctx_.Extract(old_value, lo - 1, 0));
    }
    return result;
  }

  void WriteLValue(const Expr& target, SmtRef value, SmtRef guard) {
    LValueSlot slot = ResolveLValue(target);
    if (slot.is_slice) {
      const SmtRef updated = SpliceBits(slot.leaf->scalar, slot.hi, slot.lo, value);
      slot.leaf->scalar = ctx_.Ite(guard, updated, slot.leaf->scalar);
      return;
    }
    if (slot.leaf->type->IsBool()) {
      slot.leaf->scalar = ctx_.BoolIte(guard, value, slot.leaf->scalar);
    } else {
      slot.leaf->scalar = ctx_.Ite(guard, value, slot.leaf->scalar);
    }
  }

  // --- expression evaluation (may perform calls with side effects) ---

  SmtRef Eval(const Expr& expr, SmtRef guard) {
    switch (expr.kind()) {
      case ExprKind::kConstant:
        return ctx_.Const(static_cast<const ConstantExpr&>(expr).value());
      case ExprKind::kBoolConst:
        return ctx_.BoolConst(static_cast<const BoolConstExpr&>(expr).value());
      case ExprKind::kPath:
      case ExprKind::kMember: {
        const SymValue* value = ResolveValue(expr);
        GAUNTLET_BUG_CHECK(value->IsScalar(), "reading non-scalar value");
        return value->scalar;
      }
      case ExprKind::kSlice: {
        const auto& slice = static_cast<const SliceExpr&>(expr);
        return ctx_.Extract(Eval(slice.base(), guard), slice.hi(), slice.lo());
      }
      case ExprKind::kUnary: {
        const auto& unary = static_cast<const UnaryExpr&>(expr);
        const SmtRef operand = Eval(unary.operand(), guard);
        switch (unary.op()) {
          case UnaryOp::kComplement:
            return ctx_.Not(operand);
          case UnaryOp::kNegate:
            return ctx_.Neg(operand);
          case UnaryOp::kLogicalNot:
            return ctx_.BoolNot(operand);
        }
        break;
      }
      case ExprKind::kBinary:
        return EvalBinary(static_cast<const BinaryExpr&>(expr), guard);
      case ExprKind::kMux: {
        const auto& mux = static_cast<const MuxExpr&>(expr);
        const SmtRef cond = Eval(mux.cond(), guard);
        const SmtRef then_ref = Eval(mux.then_expr(), guard);
        const SmtRef else_ref = Eval(mux.else_expr(), guard);
        if (mux.type() != nullptr && mux.type()->IsBool()) {
          return ctx_.BoolIte(cond, then_ref, else_ref);
        }
        return ctx_.Ite(cond, then_ref, else_ref);
      }
      case ExprKind::kCast: {
        const auto& cast = static_cast<const CastExpr&>(expr);
        return ctx_.Resize(Eval(cast.operand(), guard), cast.target()->width());
      }
      case ExprKind::kCall: {
        const auto& call = static_cast<const CallExpr&>(expr);
        if (call.call_kind() == CallKind::kIsValid) {
          const SymValue* header = ResolveValue(*call.receiver());
          GAUNTLET_BUG_CHECK(header->type->IsHeader(), "isValid on non-header");
          return header->valid;
        }
        GAUNTLET_BUG_CHECK(call.call_kind() == CallKind::kFunction,
                           "unexpected call kind in expression");
        const FunctionDecl* function = program_.FindFunction(call.callee());
        GAUNTLET_BUG_CHECK(function != nullptr, "unknown function at interpretation time");
        return ExecCall(function->params(), function->body(), call.args(), guard,
                        &function->return_type());
      }
    }
    GAUNTLET_BUG_CHECK(false, "unhandled expression in symbolic interpreter");
    return SmtRef{};
  }

  SmtRef EvalBinary(const BinaryExpr& binary, SmtRef guard) {
    // P4 && and || short-circuit; because our expression fragment is free of
    // side effects in pure positions (the type checker confines calls with
    // effects to statements and argument positions), eager evaluation is
    // observationally equivalent.
    const SmtRef left = Eval(binary.left(), guard);
    const SmtRef right = Eval(binary.right(), guard);
    switch (binary.op()) {
      case BinaryOp::kAdd:
        return ctx_.Add(left, right);
      case BinaryOp::kSub:
        return ctx_.Sub(left, right);
      case BinaryOp::kMul:
        return ctx_.Mul(left, right);
      case BinaryOp::kBitAnd:
        return ctx_.And(left, right);
      case BinaryOp::kBitOr:
        return ctx_.Or(left, right);
      case BinaryOp::kBitXor:
        return ctx_.Xor(left, right);
      case BinaryOp::kShl:
        return ctx_.Shl(left, right);
      case BinaryOp::kShr:
        return ctx_.Shr(left, right);
      case BinaryOp::kConcat:
        return ctx_.Concat(left, right);
      case BinaryOp::kEq:
        return ctx_.Eq(left, right);
      case BinaryOp::kNe:
        return ctx_.BoolNot(ctx_.Eq(left, right));
      case BinaryOp::kLt:
        return ctx_.Ult(left, right);
      case BinaryOp::kLe:
        return ctx_.Ule(left, right);
      case BinaryOp::kGt:
        return ctx_.Ult(right, left);
      case BinaryOp::kGe:
        return ctx_.Ule(right, left);
      case BinaryOp::kLogicalAnd:
        return ctx_.BoolAnd(left, right);
      case BinaryOp::kLogicalOr:
        return ctx_.BoolOr(left, right);
    }
    GAUNTLET_BUG_CHECK(false, "unhandled binary op in symbolic interpreter");
    return SmtRef{};
  }

  // --- calls: copy-in/copy-out (P4-16 section 6.7) ---

  SmtRef ExecCall(const std::vector<Param>& params, const BlockStmt& body,
                  const std::vector<ExprPtr>& args, SmtRef path_guard,
                  const TypePtr* ret_type) {
    const SmtRef entry_guard = EffectiveGuard(path_guard);
    // Copy-in: evaluate arguments left-to-right.
    struct CopyOut {
      const Expr* lvalue;
      std::string param_name;
    };
    std::vector<CopyOut> copy_outs;
    std::vector<std::pair<std::string, SymValue>> bindings;
    for (size_t i = 0; i < params.size(); ++i) {
      const Param& param = params[i];
      SymValue bound;
      bound.type = param.type;
      if (param.direction == Direction::kOut) {
        bound = MakeUndefValue(*param.type, /*headers_invalid=*/false);
      } else {
        bound.scalar = Eval(*args[i], path_guard);
      }
      if (param.direction == Direction::kOut || param.direction == Direction::kInOut) {
        copy_outs.push_back(CopyOut{args[i].get(), param.name});
      }
      bindings.emplace_back(param.name, std::move(bound));
    }
    // New frame.
    env_.PushLayer();
    for (auto& [name, value] : bindings) {
      env_.Bind(name, std::move(value));
    }
    frames_.push_back(Frame{ctx_.False(), SmtRef{}, ret_type});
    ExecBlock(body, path_guard);
    SmtRef ret_value = frames_.back().ret_value;
    frames_.pop_back();
    // Copy-out (left-to-right), unconditionally on return OR exit — the
    // specification interpretation that resolved the Fig. 5f ambiguity:
    // exit inside an action still respects copy-in/copy-out. Snapshot the
    // final parameter values before dropping the frame, then write them back
    // into the caller's scope.
    std::vector<std::pair<const Expr*, SmtRef>> writebacks;
    writebacks.reserve(copy_outs.size());
    for (const CopyOut& copy_out : copy_outs) {
      const SymValue* param_value = env_.Find(copy_out.param_name);
      GAUNTLET_BUG_CHECK(param_value != nullptr && param_value->IsScalar(),
                         "copy-out of non-scalar parameter");
      writebacks.emplace_back(copy_out.lvalue, param_value->scalar);
    }
    env_.PopLayer();
    for (const auto& [lvalue, value] : writebacks) {
      WriteLValue(*lvalue, value, entry_guard);
    }
    return ret_value;
  }

  // Calls an action whose parameters are pre-bound values (table-invoked
  // actions with control-plane data, or the default action's constants).
  void ExecBoundAction(const ActionDecl& action,
                       std::vector<std::pair<std::string, SymValue>> bindings,
                       SmtRef path_guard) {
    env_.PushLayer();
    for (auto& [name, value] : bindings) {
      env_.Bind(name, std::move(value));
    }
    frames_.push_back(Frame{ctx_.False(), SmtRef{}, nullptr});
    ExecBlock(action.body(), path_guard);
    frames_.pop_back();
    env_.PopLayer();
  }

  // --- tables (paper Figure 3, generalized to N entries — src/table/) ---

  void ApplyTable(const TableDecl& table, SmtRef path_guard) {
    const SmtRef guard = EffectiveGuard(path_guard);
    GAUNTLET_BUG_CHECK(current_control_ != nullptr, "table applied outside a control");
    const TableModel model(*current_control_, table);

    // Key expressions evaluate once, in column order (their side effects —
    // there are none in the supported fragment — would land here).
    std::vector<SmtRef> key_values;
    key_values.reserve(table.keys().size());
    for (const TableKey& key : table.keys()) {
      key_values.push_back(Eval(*key.expr, path_guard));
    }
    SymbolicEntrySet entry_set(ctx_, model, prefix_, key_values, table_entries_);

    // Decision conditions, in evaluation order: which slot wins the lookup,
    // whether adjacent slots overlap on the key (the entry-shadowing
    // scenario), then which listed action the winner selects. Path
    // enumeration flipping these is what makes "hit the second installed
    // entry" and "two installed entries match this packet" ordinary
    // symbolic paths.
    for (const SymbolicTableEntry& entry : entry_set.info().entries) {
      result_.branch_conditions.push_back(ctx_.BoolAnd(guard, entry.win_condition));
      result_.branch_kinds.push_back("entry-win");
    }
    for (const SmtRef& overlap : entry_set.OverlapConditions()) {
      result_.branch_conditions.push_back(ctx_.BoolAnd(guard, overlap));
      result_.branch_kinds.push_back("entry-overlap");
    }

    SmtRef any_selected = ctx_.False();
    if (entry_set.size() > 0) {
      for (size_t i = 0; i < model.action_count(); ++i) {
        const ActionDecl& action = model.action(i);
        const SmtRef selected = entry_set.ActionSelected(i);
        result_.branch_conditions.push_back(ctx_.BoolAnd(guard, selected));
        result_.branch_kinds.push_back("action-select");
        // Control-plane action data: the winning slot's symbolic arguments.
        std::vector<std::pair<std::string, SymValue>> bindings;
        for (size_t p = 0; p < action.params().size(); ++p) {
          SymValue value;
          value.type = action.params()[p].type;
          value.scalar = entry_set.ActionDataValue(i, p);
          bindings.emplace_back(action.params()[p].name, std::move(value));
        }
        ExecBoundAction(action, std::move(bindings), ctx_.BoolAnd(path_guard, selected));
        any_selected = ctx_.BoolOr(any_selected, selected);
      }
    }

    // Miss — no slot wins (keyless tables never hit) — runs the default
    // action with its compile-time constant arguments.
    const ActionDecl& default_action = model.default_action();
    std::vector<std::pair<std::string, SymValue>> default_bindings;
    for (size_t i = 0; i < default_action.params().size(); ++i) {
      SymValue value;
      value.type = default_action.params()[i].type;
      value.scalar = Eval(*table.default_args()[i], path_guard);
      default_bindings.emplace_back(default_action.params()[i].name, std::move(value));
    }
    const SmtRef default_guard = ctx_.BoolAnd(path_guard, ctx_.BoolNot(any_selected));
    ExecBoundAction(default_action, std::move(default_bindings), default_guard);
    result_.tables.push_back(entry_set.TakeInfo());
  }

  const ActionDecl* FindAction(const std::string& name) const {
    GAUNTLET_BUG_CHECK(current_control_ != nullptr, "table applied outside a control");
    const Decl* local = current_control_->FindLocal(name);
    if (local != nullptr && local->kind() == DeclKind::kAction) {
      return static_cast<const ActionDecl*>(local);
    }
    return nullptr;
  }

  // --- statements ---

  void ExecBlock(const BlockStmt& block, SmtRef path_guard) {
    for (const StmtPtr& stmt : block.statements()) {
      ExecStmt(*stmt, path_guard);
    }
  }

  void ExecStmt(const Stmt& stmt, SmtRef path_guard) {
    switch (stmt.kind()) {
      case StmtKind::kBlock:
        ExecBlock(static_cast<const BlockStmt&>(stmt), path_guard);
        return;
      case StmtKind::kEmpty:
        return;
      case StmtKind::kAssign: {
        const auto& assign = static_cast<const AssignStmt&>(stmt);
        const SmtRef value = Eval(assign.value(), path_guard);
        WriteLValue(assign.target(), value, EffectiveGuard(path_guard));
        return;
      }
      case StmtKind::kVarDecl: {
        const auto& var_decl = static_cast<const VarDeclStmt&>(stmt);
        SymValue value;
        value.type = var_decl.var_type();
        if (var_decl.init() != nullptr) {
          value.scalar = Eval(*var_decl.init(), path_guard);
        } else {
          value.scalar = var_decl.var_type()->IsBool()
                             ? FreshUndefBool()
                             : FreshUndef(var_decl.var_type()->width());
        }
        env_.Bind(var_decl.name(), std::move(value));
        return;
      }
      case StmtKind::kIf: {
        const auto& if_stmt = static_cast<const IfStmt&>(stmt);
        const SmtRef cond = Eval(if_stmt.cond(), path_guard);
        result_.branch_conditions.push_back(ctx_.BoolAnd(EffectiveGuard(path_guard), cond));
        result_.branch_kinds.push_back("if");
        ExecStmt(if_stmt.then_branch(), ctx_.BoolAnd(path_guard, cond));
        if (if_stmt.else_branch() != nullptr) {
          ExecStmt(*if_stmt.else_branch(), ctx_.BoolAnd(path_guard, ctx_.BoolNot(cond)));
        }
        return;
      }
      case StmtKind::kExit: {
        exited_ = ctx_.BoolOr(exited_, EffectiveGuard(path_guard));
        return;
      }
      case StmtKind::kReturn: {
        const auto& return_stmt = static_cast<const ReturnStmt&>(stmt);
        Frame& frame = frames_.back();
        const SmtRef guard = EffectiveGuard(path_guard);
        if (return_stmt.value() != nullptr) {
          const SmtRef value = Eval(*return_stmt.value(), path_guard);
          if (!frame.ret_value.IsValid()) {
            frame.ret_value = value;
          } else if (frame.ret_type != nullptr && (*frame.ret_type)->IsBool()) {
            frame.ret_value = ctx_.BoolIte(guard, value, frame.ret_value);
          } else {
            frame.ret_value = ctx_.Ite(guard, value, frame.ret_value);
          }
        }
        frame.returned = ctx_.BoolOr(frame.returned, guard);
        return;
      }
      case StmtKind::kCall: {
        const auto& call = static_cast<const CallStmt&>(stmt).call();
        ExecCallStmt(call, path_guard);
        return;
      }
    }
  }

  void ExecCallStmt(const CallExpr& call, SmtRef path_guard) {
    switch (call.call_kind()) {
      case CallKind::kTableApply: {
        const Decl* local = current_control_->FindLocal(call.callee());
        GAUNTLET_BUG_CHECK(local != nullptr && local->kind() == DeclKind::kTable,
                           "unknown table at interpretation time");
        ApplyTable(static_cast<const TableDecl&>(*local), path_guard);
        return;
      }
      case CallKind::kSetValid: {
        SymValue* header = ResolveValue(*call.receiver());
        const SmtRef guard = EffectiveGuard(path_guard);
        const SmtRef was_valid = header->valid;
        // Newly validated headers have arbitrary field contents.
        const SmtRef scramble = ctx_.BoolAnd(guard, ctx_.BoolNot(was_valid));
        ScrambleFields(*header, scramble);
        header->valid = ctx_.BoolOr(was_valid, guard);
        return;
      }
      case CallKind::kSetInvalid: {
        SymValue* header = ResolveValue(*call.receiver());
        const SmtRef guard = EffectiveGuard(path_guard);
        header->valid = ctx_.BoolAnd(header->valid, ctx_.BoolNot(guard));
        return;
      }
      case CallKind::kEmit: {
        GAUNTLET_BUG_CHECK(in_deparser_, "emit outside deparser at interpretation time");
        SymValue* header = ResolveValue(*call.receiver());
        const SmtRef guard = EffectiveGuard(path_guard);
        const SmtRef active = ctx_.BoolAnd(guard, header->valid);
        const std::string site = "emit" + std::to_string(emit_counter_++);
        emits_.emplace_back(site + ".$valid", active);
        for (const auto& [field_name, field] : header->fields) {
          const SmtRef masked =
              ctx_.Ite(active, field.scalar, ctx_.Const(field.type->width(), 0));
          emits_.emplace_back(site + "." + field_name, masked);
        }
        return;
      }
      case CallKind::kExtract: {
        SymValue* header = ResolveValue(*call.receiver());
        const SmtRef guard = EffectiveGuard(path_guard);
        for (auto& [field_name, field] : header->fields) {
          const uint32_t width = field.type->width();
          const std::string var_name = prefix_ + "pkt[" + std::to_string(parse_offset_) +
                                       "+:" + std::to_string(width) + "]";
          const SmtRef packet_bits = ctx_.Var(var_name, width);
          result_.input_vars.push_back(var_name);
          field.scalar = ctx_.Ite(guard, packet_bits, field.scalar);
          parse_offset_ += width;
        }
        header->valid = ctx_.BoolOr(header->valid, guard);
        return;
      }
      case CallKind::kAction: {
        const ActionDecl* action = FindAction(call.callee());
        GAUNTLET_BUG_CHECK(action != nullptr, "unknown action at interpretation time");
        ExecCall(action->params(), action->body(), call.args(), path_guard, nullptr);
        return;
      }
      case CallKind::kFunction: {
        const FunctionDecl* function = program_.FindFunction(call.callee());
        GAUNTLET_BUG_CHECK(function != nullptr, "unknown function at interpretation time");
        ExecCall(function->params(), function->body(), call.args(), path_guard,
                 &function->return_type());
        return;
      }
      default:
        GAUNTLET_BUG_CHECK(false, "unexpected call kind as statement");
    }
  }

  void ScrambleFields(SymValue& value, SmtRef scramble_guard) {
    for (auto& [name, field] : value.fields) {
      if (field.IsScalar()) {
        if (field.type->IsBool()) {
          field.scalar = ctx_.BoolIte(scramble_guard, FreshUndefBool(), field.scalar);
        } else {
          field.scalar = ctx_.Ite(scramble_guard, FreshUndef(field.type->width()), field.scalar);
        }
      } else {
        ScrambleFields(field, scramble_guard);
      }
    }
  }

  // --- parsers ---

  void RunParserState(const std::string& state_name, SmtRef path_guard, int depth,
                      uint32_t offset) {
    if (state_name == "accept") {
      return;
    }
    if (state_name == "reject") {
      reject_ = ctx_.BoolOr(reject_, EffectiveGuard(path_guard));
      return;
    }
    if (depth > SymbolicInterpreter::kMaxParserDepth) {
      throw UnsupportedError("parser state loop exceeds the unrolling bound");
    }
    const ParserState* state = current_parser_->FindState(state_name);
    GAUNTLET_BUG_CHECK(state != nullptr, "unknown parser state at interpretation time");

    const uint32_t saved_offset = parse_offset_;
    parse_offset_ = offset;
    env_.PushLayer();  // state-local variable scope
    for (const StmtPtr& stmt : state->statements) {
      ExecStmt(*stmt, path_guard);
    }
    const uint32_t offset_after = parse_offset_;
    SmtRef select_value;
    if (state->select_expr != nullptr) {
      select_value = Eval(*state->select_expr, path_guard);
    }
    env_.PopLayer();
    parse_offset_ = saved_offset;

    if (state->select_expr == nullptr) {
      GAUNTLET_BUG_CHECK(state->cases.size() == 1, "malformed unconditional transition");
      RunParserState(state->cases[0].next_state, path_guard, depth + 1, offset_after);
      return;
    }
    SmtRef matched_any = ctx_.False();
    for (const SelectCase& select_case : state->cases) {
      SmtRef case_guard;
      if (select_case.value != nullptr) {
        const SmtRef case_value =
            ctx_.Const(static_cast<const ConstantExpr&>(*select_case.value).value());
        const SmtRef matches = ctx_.Eq(select_value, case_value);
        case_guard = ctx_.BoolAnd(ctx_.BoolNot(matched_any), matches);
        matched_any = ctx_.BoolOr(matched_any, matches);
      } else {
        case_guard = ctx_.BoolNot(matched_any);
      }
      const SmtRef next_guard = ctx_.BoolAnd(path_guard, case_guard);
      result_.branch_conditions.push_back(ctx_.BoolAnd(EffectiveGuard(path_guard), case_guard));
      result_.branch_kinds.push_back("parser-select");
      RunParserState(select_case.next_state, next_guard, depth + 1, offset_after);
    }
  }

  SmtContext& ctx_;
  const Program& program_;
  std::string prefix_;
  size_t table_entries_;
  BlockSemantics result_;
  SymEnv env_;
  std::vector<Frame> frames_;
  SmtRef exited_;
  SmtRef reject_;
  const ControlDecl* current_control_ = nullptr;
  const ParserDecl* current_parser_ = nullptr;
  bool in_deparser_ = false;
  int undef_counter_ = 0;
  int emit_counter_ = 0;
  uint32_t parse_offset_ = 0;
  std::vector<std::pair<std::string, SmtRef>> emits_;
};

}  // namespace

BlockSemantics SymbolicInterpreter::InterpretControl(const Program& program,
                                                     const ControlDecl& control,
                                                     bool is_deparser) {
  InterpreterImpl impl(context_, program, "", table_entries_);
  return impl.InterpretControl(control, is_deparser);
}

BlockSemantics SymbolicInterpreter::InterpretParser(const Program& program,
                                                    const ParserDecl& parser) {
  InterpreterImpl impl(context_, program, "", table_entries_);
  return impl.InterpretParser(parser);
}

BlockSemantics SymbolicInterpreter::InterpretRole(const Program& program, BlockRole role) {
  const PackageBlock* block = program.FindBlock(role);
  GAUNTLET_BUG_CHECK(block != nullptr, "role not bound in package");
  if (role == BlockRole::kParser) {
    const ParserDecl* parser = program.FindParser(block->decl_name);
    GAUNTLET_BUG_CHECK(parser != nullptr, "parser binding is not a parser");
    return InterpretParser(program, *parser);
  }
  const ControlDecl* control = program.FindControl(block->decl_name);
  GAUNTLET_BUG_CHECK(control != nullptr, "control binding is not a control");
  return InterpretControl(program, *control, role == BlockRole::kDeparser);
}

namespace {

// Interprets a block with a name prefix so several blocks can share one
// context without variable collisions.
BlockSemantics InterpretWithPrefix(SmtContext& context, const Program& program,
                                   const PackageBlock& block, const std::string& prefix,
                                   size_t table_entries) {
  InterpreterImpl impl(context, program, prefix, table_entries);
  if (block.role == BlockRole::kParser) {
    const ParserDecl* parser = program.FindParser(block.decl_name);
    GAUNTLET_BUG_CHECK(parser != nullptr, "parser binding is not a parser");
    return impl.InterpretParser(*parser);
  }
  const ControlDecl* control = program.FindControl(block.decl_name);
  GAUNTLET_BUG_CHECK(control != nullptr, "control binding is not a control");
  return impl.InterpretControl(*control, block.role == BlockRole::kDeparser);
}

// Connects `upstream` outputs to `downstream` inputs: every downstream input
// variable whose unprefixed name matches an upstream output leaf is equated
// with that leaf's expression.
void GlueBlocks(SmtContext& context, const BlockSemantics& upstream,
                const std::string& downstream_prefix, const BlockSemantics& downstream,
                std::vector<SmtRef>& glue, std::vector<std::string>& glued_inputs) {
  for (const std::string& input_name : downstream.input_vars) {
    GAUNTLET_BUG_CHECK(input_name.rfind(downstream_prefix, 0) == 0,
                       "input variable missing block prefix");
    const std::string bare = input_name.substr(downstream_prefix.size());
    const SmtRef* upstream_output = upstream.FindOutput(bare);
    if (upstream_output == nullptr) {
      continue;  // e.g. standard metadata not produced by the parser
    }
    const SmtRef input_var = context.FindVar(input_name);
    GAUNTLET_BUG_CHECK(input_var.IsValid(), "input variable vanished from context");
    glue.push_back(context.Eq(input_var, *upstream_output));
    glued_inputs.push_back(input_name);
  }
}

}  // namespace

PipelineSemantics SymbolicInterpreter::InterpretPipeline(const Program& program) {
  PipelineSemantics pipeline;
  const PackageBlock* parser_block = program.FindBlock(BlockRole::kParser);
  const PackageBlock* ingress_block = program.FindBlock(BlockRole::kIngress);
  const PackageBlock* egress_block = program.FindBlock(BlockRole::kEgress);
  const PackageBlock* deparser_block = program.FindBlock(BlockRole::kDeparser);
  GAUNTLET_BUG_CHECK(ingress_block != nullptr, "pipeline requires an ingress block");

  const BlockSemantics* previous = nullptr;
  if (parser_block != nullptr) {
    pipeline.parser = InterpretWithPrefix(context_, program, *parser_block, "p::", table_entries_);
    pipeline.has_parser = true;
    previous = &pipeline.parser;
  }
  pipeline.ingress = InterpretWithPrefix(context_, program, *ingress_block, "ig::", table_entries_);
  if (previous != nullptr) {
    GlueBlocks(context_, *previous, "ig::", pipeline.ingress, pipeline.glue, pipeline.glued_inputs);
  }
  previous = &pipeline.ingress;
  if (egress_block != nullptr) {
    pipeline.egress = InterpretWithPrefix(context_, program, *egress_block, "eg::", table_entries_);
    pipeline.has_egress = true;
    GlueBlocks(context_, *previous, "eg::", pipeline.egress, pipeline.glue, pipeline.glued_inputs);
    previous = &pipeline.egress;
  }
  if (deparser_block != nullptr) {
    pipeline.deparser = InterpretWithPrefix(context_, program, *deparser_block, "dp::", table_entries_);
    pipeline.has_deparser = true;
    GlueBlocks(context_, *previous, "dp::", pipeline.deparser, pipeline.glue, pipeline.glued_inputs);
  }
  return pipeline;
}

EquivalenceQuery BuildEquivalenceQuery(SmtContext& context, const BlockSemantics& before,
                                       const BlockSemantics& after) {
  EquivalenceQuery query;
  if (before.outputs.size() != after.outputs.size()) {
    query.structural_mismatch = true;
    query.mismatch_detail = "output arity differs: " + std::to_string(before.outputs.size()) +
                            " vs " + std::to_string(after.outputs.size());
    return query;
  }
  SmtRef any_difference = context.False();
  for (size_t i = 0; i < before.outputs.size(); ++i) {
    const auto& [name_before, ref_before] = before.outputs[i];
    const auto& [name_after, ref_after] = after.outputs[i];
    if (name_before != name_after) {
      query.structural_mismatch = true;
      query.mismatch_detail =
          "output leaf renamed: '" + name_before + "' vs '" + name_after + "'";
      return query;
    }
    SmtRef equal;
    if (context.IsBool(ref_before) != context.IsBool(ref_after)) {
      query.structural_mismatch = true;
      query.mismatch_detail = "output leaf '" + name_before + "' changed sort";
      return query;
    }
    equal = context.Eq(ref_before, ref_after);
    any_difference = context.BoolOr(any_difference, context.BoolNot(equal));
  }
  query.difference = any_difference;
  return query;
}

}  // namespace gauntlet
